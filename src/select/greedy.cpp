#include "select/greedy.hpp"

#include <algorithm>
#include <limits>

namespace partita::select {

Selection greedy_select(const isel::ImpDatabase& db, const iplib::IpLibrary& lib,
                        const cdfg::Cdfg& entry_cdfg,
                        const std::vector<cdfg::ExecPath>& paths,
                        std::int64_t required_gain) {
  const std::vector<isel::Imp>& imps = db.imps();

  std::vector<isel::ImpIndex> chosen;
  std::vector<bool> scall_taken(db.scalls().size() * 4, false);  // by site value
  auto taken = [&](ir::CallSiteId site) -> bool {
    return site.value() < scall_taken.size() && scall_taken[site.value()];
  };
  std::vector<bool> blocked(imps.size(), false);  // excluded by SC-PC conflicts
  std::vector<std::uint32_t> ips_used;

  auto path_deficit = [&](const cdfg::ExecPath& p) {
    return required_gain - path_gain(chosen, db, entry_cdfg, p);
  };

  while (true) {
    // Collect unsatisfied paths.
    std::vector<std::size_t> unsat;
    for (std::size_t p = 0; p < paths.size(); ++p) {
      if (path_deficit(paths[p]) > 0) unsat.push_back(p);
    }
    if (unsat.empty()) break;

    // Pick the IMP with the best useful-gain / marginal-area ratio.
    double best_ratio = 0;
    isel::ImpIndex best = 0;
    bool found = false;
    for (std::size_t j = 0; j < imps.size(); ++j) {
      const isel::Imp& imp = imps[j];
      if (blocked[j] || taken(imp.scall)) continue;
      const isel::SCall* sc = db.scall_of(imp.scall);
      if (!sc || sc->node == cdfg::kInvalidNode) continue;
      // A consumed s-call that is already implemented in hardware blocks the
      // PC variant.
      bool conflict = false;
      for (ir::CallSiteId c : imp.pc_consumed_scalls) {
        if (taken(c)) conflict = true;
      }
      if (conflict) continue;

      std::int64_t useful = 0;
      for (std::size_t p : unsat) {
        if (!paths[p].contains(sc->node)) continue;
        const std::int64_t contribution =
            imp.gain_per_exec * entry_cdfg.node(sc->node).loop_frequency;
        useful += std::min(contribution, path_deficit(paths[p]));
      }
      if (useful <= 0) continue;

      double marginal_area = imp.interface_area;
      if (std::find(ips_used.begin(), ips_used.end(), imp.ip.value) == ips_used.end()) {
        marginal_area += lib.ip(imp.ip).area;
      }
      const double ratio =
          static_cast<double>(useful) / std::max(marginal_area, 1e-9);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = static_cast<isel::ImpIndex>(j);
        found = true;
      }
    }

    if (!found) {
      Selection sel;
      sel.feasible = false;  // greedy dead end
      return sel;
    }

    const isel::Imp& pick = imps[best];
    chosen.push_back(best);
    if (pick.scall.value() >= scall_taken.size()) {
      scall_taken.resize(pick.scall.value() + 1, false);
    }
    scall_taken[pick.scall.value()] = true;
    if (std::find(ips_used.begin(), ips_used.end(), pick.ip.value) == ips_used.end()) {
      ips_used.push_back(pick.ip.value);
    }
    // Block every IMP whose PC consumes the picked s-call, and every IMP of
    // the s-calls the pick consumed.
    for (std::size_t j = 0; j < imps.size(); ++j) {
      for (ir::CallSiteId c : imps[j].pc_consumed_scalls) {
        if (c == pick.scall) blocked[j] = true;
      }
    }
    for (ir::CallSiteId c : pick.pc_consumed_scalls) {
      for (isel::ImpIndex j : db.imps_for(c)) blocked[j] = true;
    }
  }

  return decode_selection(chosen, db, lib, entry_cdfg, paths);
}

bool prior_art_allows(const isel::Imp& imp) {
  return imp.iface_type == iface::InterfaceType::kType0 &&
         imp.pc_use == isel::PcUse::kNone;
}

Selection prior_art_select(const isel::ImpDatabase& db, const iplib::IpLibrary& lib,
                           const cdfg::Cdfg& entry_cdfg,
                           const std::vector<cdfg::ExecPath>& paths,
                           std::int64_t required_gain, const SelectOptions& opt) {
  Selector selector(db, lib, entry_cdfg, paths);
  SelectOptions prior = opt;
  prior.imp_filter = prior_art_allows;
  return selector.select(required_gain, prior);
}

}  // namespace partita::select

// Accelerated MOP-level lowering.
//
// After selection, the kernel's code image changes: every s-call implemented
// on an IP is fetched as an S-instruction that hands control to the
// interface (micro-coded for types 0/1, a start strobe for types 2/3)
// instead of a plain call. This pass produces that final MOP list: the entry
// function is lowered normally and the kCall micro-operation of each
// selected, non-flattened s-call is rewritten into kIpDispatch (flattened
// selections keep the software call -- the acceleration happens inside the
// callee). The result is what the fetch/decode units of the generated ASIP
// actually execute, and what print_mops renders for inspection.
#pragma once

#include "ir/lower.hpp"
#include "select/selection.hpp"

namespace partita::select {

struct AcceleratedLowering {
  ir::LoweredFunction lowered;
  /// Number of call MOPs rewritten into IP dispatches.
  int dispatch_mops = 0;
  /// Number of selected s-calls left as software calls (flattened IMPs).
  int flattened_calls = 0;
};

/// Lowers the module's entry function under `selection`.
AcceleratedLowering lower_accelerated(const ir::Module& module,
                                      const Selection& selection,
                                      const isel::ImpDatabase& db);

}  // namespace partita::select

// Kernel + IP co-simulation.
//
// Executes the application statement-by-statement on a timeline with two
// actors -- the ASIP kernel and the (single-at-a-time) IP accelerator --
// under a Selection produced by the selector:
//
//  * unselected calls and plain segments run on the kernel for their software
//    cycles;
//  * s-calls implemented through type 0/2 occupy the kernel (software
//    controller) or the data memories (DMA) for the analytic interface time,
//    so nothing overlaps;
//  * s-calls implemented through type 1/3 fill the buffer (T_IF_IN), start
//    the IP, and -- when the IMP carries parallel code -- execute the PC
//    statements on the kernel while the IP runs, then wait for the IP and
//    drain (T_IF_OUT). Statements executed early are skipped when control
//    reaches them in normal order.
//
// A scheduling note: the analytic model (Definitions 3-5) lets the PC live in
// a deeper branch region than the call, guaranteeing the min-over-paths gain.
// A statically scheduled overlap, however, may only hoist statements that are
// control-equivalent to the call; the simulator enforces exactly that, so
// simulated gains can fall slightly short of the analytic credit when a PC
// crosses into a conditional arm. Tests validate exact agreement on
// control-equivalent layouts.
//
// The simulator's purpose is validating the Section 3 equations (Fig. 2's
// overlap picture) against an independent execution model, and providing the
// bench harness with measured (not just predicted) cycle counts.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "select/selection.hpp"
#include "support/rng.hpp"

namespace partita::sim {

struct SimConfig {
  iface::KernelParams kernel;
};

struct ScallStats {
  std::int64_t executions = 0;
  std::int64_t cycles = 0;   // wall time attributed to the s-call
  std::int64_t overlap = 0;  // cycles the kernel worked while the IP ran
};

struct SimResult {
  std::int64_t total_cycles = 0;
  std::int64_t overlap_cycles = 0;
  std::int64_t ip_active_cycles = 0;
  /// Keyed by CallSiteId value of the top-level s-call.
  std::unordered_map<std::uint32_t, ScallStats> per_site;
};

class CoSimulator {
 public:
  CoSimulator(const ir::Module& module, const iplib::IpLibrary& lib,
              const isel::ImpDatabase& db, const cdfg::Cdfg& entry_cdfg,
              const std::vector<cdfg::ExecPath>& paths, const SimConfig& config = {});

  /// One run. `selection` may be nullptr for the pure-software reference.
  /// Branches are resolved with `rng` using their profile probabilities.
  SimResult run(const select::Selection* selection, support::Rng& rng) const;

  /// Convenience: averages `runs` Monte-Carlo executions.
  SimResult run_average(const select::Selection* selection, support::Rng& rng,
                        std::size_t runs) const;

 private:
  struct RunState;

  void exec_seq(RunState& st, const ir::Function& fn,
                const std::vector<ir::StmtId>& seq) const;
  void exec_stmt(RunState& st, const ir::Function& fn, ir::StmtId id) const;
  void exec_software_call(RunState& st, const ir::Function& callee) const;
  void exec_selected_call(RunState& st, const ir::Function& fn, const ir::Stmt& s,
                          const isel::Imp& imp) const;

  const ir::Module& module_;
  const iplib::IpLibrary& lib_;
  const isel::ImpDatabase& db_;
  const cdfg::Cdfg& entry_cdfg_;
  const std::vector<cdfg::ExecPath>& paths_;
  SimConfig config_;
};

}  // namespace partita::sim

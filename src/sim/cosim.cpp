#include "sim/cosim.hpp"

#include <algorithm>

#include "cdfg/parallel.hpp"
#include "support/assert.hpp"

namespace partita::sim {

namespace {

/// Skip-bookkeeping key: statements executed early must only shadow the
/// occurrence in their own function (ids are per-function arenas).
std::uint64_t stmt_key(ir::FuncId fn, ir::StmtId stmt) {
  return (static_cast<std::uint64_t>(fn.value()) << 32) | stmt.value();
}

}  // namespace

struct CoSimulator::RunState {
  support::Rng* rng = nullptr;
  const select::Selection* sel = nullptr;
  SimResult* res = nullptr;

  std::int64_t t = 0;  // kernel wall clock

  /// Top-level call site -> chosen IMP.
  std::unordered_map<std::uint32_t, isel::ImpIndex> site_imp;
  /// Statements already executed early (value = outstanding skip count).
  std::unordered_map<std::uint64_t, int> pending_skips;
  /// Function accelerated by the *inner* IP of an active flattened IMP ->
  /// cycles of one accelerated execution. (Stack discipline: saved/restored
  /// around the flattened call.)
  std::unordered_map<std::uint32_t, std::int64_t> inner_accel;
  /// Set while executing parallel code, to suppress early-exec recursion.
  bool in_parallel_code = false;
};

CoSimulator::CoSimulator(const ir::Module& module, const iplib::IpLibrary& lib,
                         const isel::ImpDatabase& db, const cdfg::Cdfg& entry_cdfg,
                         const std::vector<cdfg::ExecPath>& paths, const SimConfig& config)
    : module_(module),
      lib_(lib),
      db_(db),
      entry_cdfg_(entry_cdfg),
      paths_(paths),
      config_(config) {}

void CoSimulator::exec_seq(RunState& st, const ir::Function& fn,
                           const std::vector<ir::StmtId>& seq) const {
  for (ir::StmtId id : seq) exec_stmt(st, fn, id);
}

void CoSimulator::exec_stmt(RunState& st, const ir::Function& fn, ir::StmtId id) const {
  // Skip statements that already ran as parallel code.
  auto skip_it = st.pending_skips.find(stmt_key(fn.id(), id));
  if (skip_it != st.pending_skips.end() && skip_it->second > 0) {
    --skip_it->second;
    return;
  }

  const ir::Stmt& s = fn.stmt(id);
  switch (s.kind) {
    case ir::StmtKind::kSeg:
      st.t += s.cycles;
      break;
    case ir::StmtKind::kCall: {
      // Top-level selected s-call?
      if (st.sel && fn.id() == module_.entry()) {
        auto it = st.site_imp.find(s.call_site.value());
        if (it != st.site_imp.end() && !st.in_parallel_code) {
          exec_selected_call(st, fn, s, db_.imps()[it->second]);
          return;
        }
      }
      // Inner acceleration from an active flattened IMP?
      auto acc = st.inner_accel.find(s.callee.value());
      if (acc != st.inner_accel.end()) {
        st.t += acc->second;
        st.res->ip_active_cycles += acc->second;
        return;
      }
      exec_software_call(st, module_.function(s.callee));
      break;
    }
    case ir::StmtKind::kIf:
      if (st.rng->chance(s.taken_prob)) exec_seq(st, fn, s.then_stmts);
      else exec_seq(st, fn, s.else_stmts);
      break;
    case ir::StmtKind::kLoop:
      for (std::int64_t i = 0; i < s.trip_count; ++i) exec_seq(st, fn, s.body_stmts);
      break;
  }
}

void CoSimulator::exec_software_call(RunState& st, const ir::Function& callee) const {
  if (callee.declared_sw_cycles()) {
    st.t += *callee.declared_sw_cycles();
    return;
  }
  exec_seq(st, callee, callee.body());
}

void CoSimulator::exec_selected_call(RunState& st, const ir::Function& fn,
                                     const ir::Stmt& s, const isel::Imp& imp) const {
  ScallStats& stats = st.res->per_site[s.call_site.value()];
  ++stats.executions;
  const std::int64_t t_before = st.t;

  if (imp.flattened) {
    // Callee stays in software; calls to the accelerated descendant run on
    // the inner IP. Save/restore to respect nesting.
    const ir::FuncId target = module_.find_function(imp.ip_function->function);
    PARTITA_ASSERT(target.valid());
    const auto saved = st.inner_accel;
    st.inner_accel[target.value()] = imp.timing.total_cycles;
    exec_software_call(st, module_.function(s.callee));
    st.inner_accel = saved;
    stats.cycles += st.t - t_before;
    return;
  }

  if (!iface::is_buffered(imp.iface_type)) {
    // Type 0: the kernel runs the controller. Type 2: the DMA owns the data
    // memories. Either way the kernel makes no other progress.
    st.t += imp.timing.total_cycles;
    st.res->ip_active_cycles += imp.timing.t_ip;
    stats.cycles += st.t - t_before;
    return;
  }

  // Buffered (types 1/3): fill, run + parallel code, wait, drain. The core
  // (IP + buffer streaming, MAX-composed for pipelined IPs, serialized for
  // combinational ones) is recovered from the timing identity
  //   total = t_if_in + core + t_if_out - overlap.
  const std::int64_t core =
      imp.timing.total_cycles - imp.timing.t_if_in - imp.timing.t_if_out +
      imp.timing.overlap;
  st.t += imp.timing.t_if_in;
  const std::int64_t core_start = st.t;

  if (imp.pc_use != isel::PcUse::kNone && !st.in_parallel_code) {
    // Re-derive this IMP's parallel code and execute the control-equivalent
    // statements on the kernel while the IP runs.
    const isel::SCall* sc = db_.scall_of(imp.scall);
    PARTITA_ASSERT(sc != nullptr && sc->node != cdfg::kInvalidNode);
    cdfg::PcOptions pc_opt;
    pc_opt.allow_scall_software = imp.pc_use == isel::PcUse::kWithScallSw;
    pc_opt.is_scall = [this](ir::CallSiteId c) { return db_.scall_of(c) != nullptr; };
    const cdfg::ParallelCode pc =
        cdfg::parallel_code(entry_cdfg_, sc->node, paths_, pc_opt);

    st.in_parallel_code = true;
    for (cdfg::NodeIndex n : pc.nodes) {
      if (!entry_cdfg_.same_branch(sc->node, n)) continue;  // static schedule
      const ir::StmtId stmt = entry_cdfg_.node(n).stmt;
      const std::uint64_t key = stmt_key(fn.id(), stmt);
      auto hoisted = st.pending_skips.find(key);
      if (hoisted != st.pending_skips.end() && hoisted->second > 0) {
        continue;  // already hoisted by an earlier overlapping s-call
      }
      exec_stmt(st, fn, stmt);
      ++st.pending_skips[key];  // absorb the in-order occurrence later
    }
    st.in_parallel_code = false;
  }

  const std::int64_t pc_exec = st.t - core_start;
  const std::int64_t overlap = std::min(core, pc_exec);
  st.res->overlap_cycles += overlap;
  stats.overlap += overlap;
  st.res->ip_active_cycles += core;

  st.t = std::max(st.t, core_start + core);
  st.t += imp.timing.t_if_out;
  stats.cycles += st.t - t_before;
}

SimResult CoSimulator::run(const select::Selection* selection, support::Rng& rng) const {
  SimResult res;
  RunState st;
  st.rng = &rng;
  st.sel = selection;
  st.res = &res;
  if (selection) {
    for (isel::ImpIndex idx : selection->chosen) {
      st.site_imp.emplace(db_.imps()[idx].scall.value(), idx);
    }
  }
  const ir::Function& entry = module_.function(module_.entry());
  exec_seq(st, entry, entry.body());
  res.total_cycles = st.t;
  return res;
}

SimResult CoSimulator::run_average(const select::Selection* selection, support::Rng& rng,
                                   std::size_t runs) const {
  // invariant: run counts are validated at the CLI boundary (--runs 1..100000).
  PARTITA_ASSERT(runs > 0);
  SimResult acc;
  for (std::size_t r = 0; r < runs; ++r) {
    const SimResult one = run(selection, rng);
    acc.total_cycles += one.total_cycles;
    acc.overlap_cycles += one.overlap_cycles;
    acc.ip_active_cycles += one.ip_active_cycles;
    for (const auto& [site, stats] : one.per_site) {
      ScallStats& agg = acc.per_site[site];
      agg.executions += stats.executions;
      agg.cycles += stats.cycles;
      agg.overlap += stats.overlap;
    }
  }
  const auto n = static_cast<std::int64_t>(runs);
  acc.total_cycles = (acc.total_cycles + n / 2) / n;
  acc.overlap_cycles = (acc.overlap_cycles + n / 2) / n;
  acc.ip_active_cycles = (acc.ip_active_cycles + n / 2) / n;
  return acc;
}

}  // namespace partita::sim

// Write-ahead journal for the solve service (partita-journal-v1).
//
// Durability contract: every admitted SolveRequest is appended to the
// journal -- one CRC-framed record (support/io), fsync'd -- BEFORE its
// submit ticket is acknowledged to the caller. A request the client saw
// admitted therefore survives process death: on boot, recover() replays the
// segments, pairs admit records with the terminal records written when each
// item finished, and surfaces everything still undecided so the service can
// re-admit it under its original envelope. Requests execute at-least-once
// across a crash; acknowledgment is exactly-once (a crash before the append
// means the client never got a ticket).
//
// Record schema (one JSON document per frame, field "v" =
// "partita-journal-v1"):
//
//   admit     {"type":"admit","seq":N,"items":n,"req":"<payload>"}
//   terminal  {"type":"terminal","seq":N,"item":i,"state":"completed",
//              "label":"...","signature":"..."}
//   quarantine{"type":"quarantine","seq":N,"fixture":"<fixture json>"}
//
// The request payload is OPAQUE to the journal (the wire layer encodes and
// decodes it); the journal only guarantees byte-faithful round-trips. The
// quarantine type is the PR 4 fixture writer re-based onto this encoding:
// a quarantined instance is one framed record embedding the
// partita-oracle-fixture-v1 document, so the same file is replayable by
// `partita_fuzz --replay` and legible to journal tooling.
//
// Torn tails. Appends can die mid-write (power loss, SIGKILL): recovery
// decodes each segment up to the first frame that fails its CRC, counts the
// salvaged records and the dropped suffix bytes, and never crashes on any
// byte sequence -- corrupt_tail_test fuzzes this.
//
// Compaction. open() rewrites history: undecided admits are re-framed into
// one fresh segment (original seqs preserved), decided records are dropped,
// and appends continue in a new segment. compact() does the same for a
// quiesced journal (the service calls it on graceful drain).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "support/io.hpp"

namespace partita::service {

/// One undecided admit surfaced by recovery: the admission seq plus the
/// opaque request payload exactly as it was journaled.
struct JournalRecord {
  std::uint64_t seq = 0;
  std::size_t items = 1;
  std::string payload;
};

/// One terminal record: which item of which admit finished, how, and the
/// solution_signature it answered with (empty for non-completed states).
struct JournalTerminal {
  std::uint64_t seq = 0;
  std::size_t item = 0;
  std::string state;
  std::string label;
  std::string signature;
};

/// What recover() salvaged from a journal directory.
struct JournalRecovery {
  /// Admits with at least one item lacking a terminal record, seq order.
  std::vector<JournalRecord> undecided;
  /// Every terminal record seen (CI compares signatures across a crash).
  std::vector<JournalTerminal> terminals;
  /// First seq a reopened journal may assign.
  std::uint64_t next_seq = 1;
  std::size_t segments = 0;          // segment files scanned
  std::size_t records_salvaged = 0;  // frames that decoded and parsed
  std::size_t records_dropped = 0;   // frames whose JSON was malformed
  std::size_t bytes_dropped = 0;     // torn/corrupt suffix bytes skipped
};

struct JournalStats {
  std::uint64_t admits = 0;
  std::uint64_t terminals = 0;
  std::uint64_t rotations = 0;
  std::uint64_t append_failures = 0;
};

class Journal {
 public:
  struct Config {
    std::string dir;
    /// A segment past this size rotates at the next admit.
    std::size_t rotate_bytes = 4u << 20;
    /// fsync every append (the durability contract; tests may relax it).
    bool sync = true;
  };

  /// Record type tag inside one decoded journal document.
  enum class RecordType : std::uint8_t { kAdmit, kTerminal, kQuarantine };

  /// One decoded record; the fields populated depend on `type`.
  struct Record {
    RecordType type = RecordType::kAdmit;
    std::uint64_t seq = 0;
    std::size_t items = 1;   // admit
    std::string payload;     // admit request / quarantine fixture document
    JournalTerminal terminal;  // terminal
  };

  Journal() = default;
  ~Journal() { close(); }
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Scans `dir` (creating it if absent) without mutating anything: pairs
  /// admits with terminals, stops each segment at its first torn frame.
  /// Total -- any byte content yields a result, never a crash.
  static JournalRecovery recover(const std::string& dir);

  /// Compacts `recovered` history (undecided admits survive, seqs
  /// preserved; decided records are dropped) and opens a fresh segment for
  /// appending. `recovered` must come from recover() on the same dir.
  bool open(const Config& config, const JournalRecovery& recovered);
  /// Convenience for a caller that does not replay: recover() + open().
  bool open(const Config& config);

  bool is_open() const { return file_.is_open(); }
  void close();

  /// Appends one admit record and (per Config::sync) fsyncs; the record is
  /// durable when this returns. Returns the assigned seq, 0 on failure --
  /// fault site "journal.append". Not thread-safe; the service serializes
  /// appends under its own mutex.
  std::uint64_t append_admit(const std::string& payload, std::size_t items = 1);

  /// Appends the terminal record for (seq, item) -- fault site
  /// "journal.trim". A lost terminal record is benign: the admit merely
  /// replays on the next recovery.
  bool append_terminal(const JournalTerminal& terminal);

  /// Rewrites the directory down to undecided admits only. Requires a
  /// quiesced journal (no concurrent appends); the service calls this after
  /// a graceful drain, when everything is decided and the directory
  /// collapses to one empty segment.
  bool compact();

  const JournalStats& stats() const { return stats_; }
  std::uint64_t next_seq() const { return next_seq_; }
  const std::string& dir() const { return cfg_.dir; }

  // --- record codec (also used by the quarantine writer / replayer) -------
  static std::string encode_admit(std::uint64_t seq, std::size_t items,
                                  const std::string& payload);
  static std::string encode_terminal(const JournalTerminal& terminal);
  static std::string encode_quarantine(std::uint64_t seq,
                                       const std::string& fixture_json);
  /// Parses one record document. Total: malformed input yields false plus a
  /// one-line reason, never a crash.
  static bool decode_record(const std::string& text, Record* out,
                            std::string* error);

  /// Writes `path` as one CRC-framed quarantine record embedding
  /// `fixture_json` (atomic replace). The partita_fuzz replayer accepts
  /// both this format and bare fixture JSON.
  static bool write_quarantine_file(const std::string& path, std::uint64_t seq,
                                    const std::string& fixture_json);
  /// Extracts the fixture document from a file in either format (framed
  /// quarantine record or bare JSON).
  static bool read_quarantine_file(const std::string& path, std::string* fixture_json,
                                   std::string* error);

 private:
  static std::string segment_name(std::uint64_t first_seq);
  bool start_segment(std::uint64_t first_seq);
  bool append_framed(const std::string& record);
  bool reset_segments(const JournalRecovery& recovered);

  Config cfg_;
  support::io::AppendFile file_;
  std::size_t current_bytes_ = 0;
  std::uint64_t next_seq_ = 1;
  JournalStats stats_;
};

}  // namespace partita::service

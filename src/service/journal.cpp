#include "service/journal.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

#include "support/fault_injection.hpp"
#include "support/json.hpp"

namespace partita::service {

namespace {

namespace json = support::json;
namespace io = support::io;

constexpr const char* kFormat = "partita-journal-v1";
constexpr const char* kSegmentPrefix = "wal_";
constexpr const char* kSegmentSuffix = ".log";

bool is_segment_name(const std::string& name) {
  const std::size_t pre = std::char_traits<char>::length(kSegmentPrefix);
  const std::size_t suf = std::char_traits<char>::length(kSegmentSuffix);
  return name.size() > pre + suf && name.compare(0, pre, kSegmentPrefix) == 0 &&
         name.compare(name.size() - suf, suf, kSegmentSuffix) == 0;
}

std::string join(const std::string& dir, const std::string& name) {
  return dir + "/" + name;
}

/// First seq of a segment, parsed back out of its file name. Segment names
/// carry the seq counter across a compaction that leaves no records: a
/// fully-decided journal collapses to one EMPTY segment named for next_seq,
/// and recovery must not restart the counter at 1 (seq reuse would pair old
/// terminal records with new admits).
std::uint64_t segment_first_seq(const std::string& name) {
  return std::strtoull(
      name.c_str() + std::char_traits<char>::length(kSegmentPrefix), nullptr, 10);
}

}  // namespace

std::string Journal::segment_name(std::uint64_t first_seq) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%s%012llu%s", kSegmentPrefix,
                static_cast<unsigned long long>(first_seq), kSegmentSuffix);
  return buf;
}

std::string Journal::encode_admit(std::uint64_t seq, std::size_t items,
                                  const std::string& payload) {
  std::ostringstream os;
  os << "{\"v\": " << json::quote(kFormat) << ", \"type\": \"admit\", \"seq\": "
     << seq << ", \"items\": " << items << ", \"req\": " << json::quote(payload)
     << "}";
  return os.str();
}

std::string Journal::encode_terminal(const JournalTerminal& t) {
  std::ostringstream os;
  os << "{\"v\": " << json::quote(kFormat)
     << ", \"type\": \"terminal\", \"seq\": " << t.seq << ", \"item\": " << t.item
     << ", \"state\": " << json::quote(t.state)
     << ", \"label\": " << json::quote(t.label)
     << ", \"signature\": " << json::quote(t.signature) << "}";
  return os.str();
}

std::string Journal::encode_quarantine(std::uint64_t seq,
                                       const std::string& fixture_json) {
  std::ostringstream os;
  os << "{\"v\": " << json::quote(kFormat)
     << ", \"type\": \"quarantine\", \"seq\": " << seq
     << ", \"fixture\": " << json::quote(fixture_json) << "}";
  return os.str();
}

bool Journal::decode_record(const std::string& text, Record* out,
                            std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error) *error = why;
    return false;
  };
  std::string perr;
  const auto doc = json::parse(text, &perr);
  if (!doc || !doc->is_object()) return fail("bad JSON: " + perr);
  const json::Object& o = doc->object();
  if (json::string_or(o, "v", "") != kFormat) {
    return fail("not a " + std::string(kFormat) + " record");
  }
  const std::string type = json::string_or(o, "type", "");
  Record r;
  const std::int64_t seq = json::int_or(o, "seq", -1);
  if (seq < 0) return fail("bad seq");
  r.seq = static_cast<std::uint64_t>(seq);
  if (type == "admit") {
    r.type = RecordType::kAdmit;
    const std::int64_t items = json::int_or(o, "items", 1);
    if (items < 1) return fail("bad items");
    r.items = static_cast<std::size_t>(items);
    if (o.count("req") == 0 || !o.at("req").is_string()) return fail("missing req");
    r.payload = o.at("req").string();
  } else if (type == "terminal") {
    r.type = RecordType::kTerminal;
    const std::int64_t item = json::int_or(o, "item", -1);
    if (item < 0) return fail("bad item");
    r.terminal.seq = r.seq;
    r.terminal.item = static_cast<std::size_t>(item);
    r.terminal.state = json::string_or(o, "state", "");
    if (r.terminal.state.empty()) return fail("missing state");
    r.terminal.label = json::string_or(o, "label", "");
    r.terminal.signature = json::string_or(o, "signature", "");
  } else if (type == "quarantine") {
    r.type = RecordType::kQuarantine;
    if (o.count("fixture") == 0 || !o.at("fixture").is_string()) {
      return fail("missing fixture");
    }
    r.payload = o.at("fixture").string();
  } else {
    return fail("unknown record type '" + type + "'");
  }
  *out = std::move(r);
  return true;
}

JournalRecovery Journal::recover(const std::string& dir) {
  JournalRecovery rec;
  io::make_dirs(dir);

  struct Admit {
    std::size_t items = 1;
    std::string payload;
    std::set<std::size_t> decided;
  };
  std::map<std::uint64_t, Admit> admits;

  for (const std::string& name : io::list_dir(dir)) {
    if (!is_segment_name(name)) continue;
    ++rec.segments;
    rec.next_seq = std::max(rec.next_seq, segment_first_seq(name));
    std::string data;
    if (!io::read_file(join(dir, name), &data)) continue;
    std::size_t dropped = 0;
    const std::vector<std::string> frames = io::decode_frames(data, &dropped);
    rec.bytes_dropped += dropped;
    for (const std::string& frame : frames) {
      Record r;
      if (!decode_record(frame, &r, nullptr)) {
        ++rec.records_dropped;
        continue;
      }
      ++rec.records_salvaged;
      rec.next_seq = std::max(rec.next_seq, r.seq + 1);
      switch (r.type) {
        case RecordType::kAdmit: {
          Admit& a = admits[r.seq];
          a.items = r.items;
          a.payload = std::move(r.payload);
          break;
        }
        case RecordType::kTerminal: {
          admits[r.terminal.seq].decided.insert(r.terminal.item);
          rec.terminals.push_back(std::move(r.terminal));
          break;
        }
        case RecordType::kQuarantine:
          break;  // standalone fixture records carry no lifecycle
      }
    }
  }

  for (auto& [seq, a] : admits) {
    // A terminal without a surviving admit (its payload was lost to a torn
    // segment, or the admit was compacted away) has nothing to replay.
    if (a.payload.empty()) continue;
    std::size_t done = 0;
    for (const std::size_t item : a.decided) {
      if (item < a.items) ++done;
    }
    if (done >= a.items) continue;
    JournalRecord out;
    out.seq = seq;
    out.items = a.items;
    out.payload = std::move(a.payload);
    rec.undecided.push_back(std::move(out));
  }
  return rec;
}

bool Journal::reset_segments(const JournalRecovery& recovered) {
  // Rewrite-then-delete: the compacted segment lands atomically first, so a
  // crash between the two steps duplicates admits (idempotent on the next
  // recovery -- same seq, same payload) instead of losing them.
  std::string compacted;
  for (const JournalRecord& r : recovered.undecided) {
    io::encode_frame(encode_admit(r.seq, r.items, r.payload), &compacted);
  }
  const std::string keep =
      recovered.undecided.empty()
          ? std::string()
          : segment_name(recovered.undecided.front().seq);
  if (!compacted.empty()) {
    if (!io::write_file_atomic(join(cfg_.dir, keep), compacted)) return false;
  }
  for (const std::string& name : io::list_dir(cfg_.dir)) {
    if (!is_segment_name(name) || name == keep) continue;
    io::remove_file(join(cfg_.dir, name));
  }
  next_seq_ = std::max<std::uint64_t>(1, recovered.next_seq);
  return start_segment(next_seq_);
}

bool Journal::open(const Config& config, const JournalRecovery& recovered) {
  close();
  cfg_ = config;
  if (!io::make_dirs(cfg_.dir)) return false;
  return reset_segments(recovered);
}

bool Journal::open(const Config& config) {
  return open(config, recover(config.dir));
}

void Journal::close() {
  file_.close();
  current_bytes_ = 0;
}

bool Journal::start_segment(std::uint64_t first_seq) {
  file_.close();
  current_bytes_ = 0;
  return file_.open(join(cfg_.dir, segment_name(first_seq)));
}

bool Journal::append_framed(const std::string& record) {
  std::string framed;
  io::encode_frame(record, &framed);
  if (!file_.append(framed, cfg_.sync)) {
    ++stats_.append_failures;
    return false;
  }
  current_bytes_ += framed.size();
  return true;
}

std::uint64_t Journal::append_admit(const std::string& payload, std::size_t items) {
  if (!file_.is_open()) return 0;
  if (support::fault_should_trip("journal.append")) {
    ++stats_.append_failures;
    return 0;
  }
  const std::uint64_t seq = next_seq_;
  if (current_bytes_ >= cfg_.rotate_bytes) {
    if (!start_segment(seq)) return 0;
    ++stats_.rotations;
  }
  if (!append_framed(encode_admit(seq, items, payload))) return 0;
  ++next_seq_;
  ++stats_.admits;
  return seq;
}

bool Journal::append_terminal(const JournalTerminal& terminal) {
  if (!file_.is_open()) return false;
  if (support::fault_should_trip("journal.trim")) {
    ++stats_.append_failures;
    return false;
  }
  if (!append_framed(encode_terminal(terminal))) return false;
  ++stats_.terminals;
  return true;
}

bool Journal::compact() {
  if (!file_.is_open()) return false;
  file_.close();
  current_bytes_ = 0;
  return reset_segments(recover(cfg_.dir));
}

bool Journal::write_quarantine_file(const std::string& path, std::uint64_t seq,
                                    const std::string& fixture_json) {
  std::string framed;
  io::encode_frame(encode_quarantine(seq, fixture_json), &framed);
  return io::write_file_atomic(path, framed);
}

bool Journal::read_quarantine_file(const std::string& path,
                                   std::string* fixture_json, std::string* error) {
  std::string data;
  if (!io::read_file(path, &data)) {
    if (error) *error = "cannot read " + path;
    return false;
  }
  std::string payload;
  std::size_t consumed = 0;
  if (io::decode_frame(data, 0, &payload, &consumed) == io::FrameStatus::kOk) {
    Record r;
    if (!decode_record(payload, &r, error)) return false;
    if (r.type != RecordType::kQuarantine) {
      if (error) *error = "framed record is not a quarantine fixture";
      return false;
    }
    *fixture_json = std::move(r.payload);
    return true;
  }
  // Legacy format: the file IS the fixture document.
  *fixture_json = std::move(data);
  return true;
}

}  // namespace partita::service

#include "service/solution_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace partita::service {

namespace {

std::int64_t l1_distance(const std::vector<std::int64_t>& a,
                         const std::vector<std::int64_t>& b) {
  if (a.size() != b.size()) return std::numeric_limits<std::int64_t>::max();
  std::int64_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::int64_t step = a[i] > b[i] ? a[i] - b[i] : b[i] - a[i];
    if (d > std::numeric_limits<std::int64_t>::max() - step) {
      return std::numeric_limits<std::int64_t>::max();
    }
    d += step;
  }
  return d;
}

}  // namespace

std::string SolutionCache::Key::group() const {
  std::string s = tenant;
  s += '|';
  s += structure.hex();
  s += '|';
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(options_digest));
  s += buf;
  return s;
}

std::string SolutionCache::Key::str() const {
  std::string s = group();
  s += '|';
  for (std::size_t i = 0; i < gains.size(); ++i) {
    if (i) s += ',';
    s += std::to_string(gains[i]);
  }
  return s;
}

SolutionCache::SolutionCache(Config cfg) : cfg_(cfg) {
  const int n = std::max(1, cfg_.shards);
  cfg_.shards = n;
  if (cfg_.capacity == 0) cfg_.capacity = 1;
  per_shard_capacity_ =
      std::max<std::size_t>(1, (cfg_.capacity + n - 1) / static_cast<std::size_t>(n));
  per_shard_bytes_ =
      cfg_.max_bytes == 0 ? 0 : std::max<std::size_t>(1, cfg_.max_bytes / n);
  shards_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

SolutionCache::Shard& SolutionCache::shard_for(const Key& key) {
  // Shard by GROUP, not full key: all gains-variants of one structure land
  // in one shard so the neighbor scan stays shard-local.
  const std::string g = key.group();
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (const char c : g) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return *shards_[h % shards_.size()];
}

std::size_t SolutionCache::entry_bytes(const Entry& e) {
  std::size_t b = sizeof(Entry) + e.key.size() + e.group.size();
  b += e.resolved_gains.size() * sizeof(std::int64_t);
  b += e.selection.chosen.size() * sizeof(isel::ImpIndex);
  b += e.selection.ips_used.size() * sizeof(iplib::IpId);
  b += e.selection.degradation_detail.size();
  const ilp::BatchContext& a = e.artifacts;
  b += a.root_basis.status.size();
  b += a.incumbent.size() * sizeof(double);
  for (int d = 0; d < 2; ++d) {
    b += a.pc_sum[d].size() * sizeof(double);
    b += a.pc_cnt[d].size() * sizeof(int);
  }
  for (const auto& c : a.cliques) b += c.size() * sizeof(ilp::VarIndex);
  for (const auto& vc : a.var_cliques) b += vc.size() * sizeof(std::uint32_t);
  return b;
}

std::optional<select::Selection> SolutionCache::lookup(const Key& key) {
  Shard& s = shard_for(key);
  const std::string k = key.str();
  const std::uint64_t gen = generation_.load();
  std::lock_guard<std::mutex> g(s.mu);
  ++s.stats.lookups;
  const auto it = s.index.find(k);
  if (it == s.index.end()) {
    ++s.stats.misses;
    return std::nullopt;
  }
  if (it->second->generation != gen) {
    // Outdated by invalidate_all(): drop lazily, count both stale and miss
    // so hits + misses == lookups stays an invariant.
    s.bytes -= it->second->bytes;
    s.lru.erase(it->second);
    s.index.erase(it);
    ++s.stats.stale;
    ++s.stats.misses;
    return std::nullopt;
  }
  ++s.stats.hits;
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // refresh recency
  return it->second->selection;
}

CacheSeed SolutionCache::nearest(const Key& key,
                                 const std::vector<std::int64_t>& resolved_gains) {
  Shard& s = shard_for(key);
  const std::string group = key.group();
  const std::uint64_t gen = generation_.load();
  CacheSeed seed;
  std::lock_guard<std::mutex> g(s.mu);
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  const Entry* best_entry = nullptr;
  for (const Entry& e : s.lru) {
    if (e.generation != gen || e.group != group) continue;
    const std::int64_t d = l1_distance(resolved_gains, e.resolved_gains);
    if (d < best) {
      best = d;
      best_entry = &e;
    }
  }
  if (best_entry == nullptr) return seed;
  seed.valid = true;
  seed.artifacts = best_entry->artifacts;
  seed.artifacts.carry_search_state = true;
  seed.distance = best;
  ++s.stats.neighbor_hits;
  return seed;
}

std::optional<std::int64_t> SolutionCache::derived_gain(const Key& key) {
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> g(s.mu);
  const auto it = s.gain_memo.find(key.group());
  if (it == s.gain_memo.end()) return std::nullopt;
  ++s.stats.gain_memo_hits;
  return it->second;
}

void SolutionCache::insert(const Key& key, const select::Selection& sel,
                           ilp::BatchContext artifacts,
                           const std::vector<std::int64_t>& resolved_gains,
                           std::optional<std::int64_t> derived) {
  Shard& s = shard_for(key);
  Entry e;
  e.key = key.str();
  e.group = key.group();
  e.resolved_gains = resolved_gains;
  e.selection = sel;
  e.artifacts = std::move(artifacts);
  e.artifacts.carry_search_state = true;
  e.generation = generation_.load();
  e.bytes = entry_bytes(e);

  std::lock_guard<std::mutex> g(s.mu);
  const auto it = s.index.find(e.key);
  if (it != s.index.end()) {
    // Refresh in place (same key can be re-inserted after a stale drop or a
    // racing double-miss); recency moves to the front.
    s.bytes -= it->second->bytes;
    s.lru.erase(it->second);
    s.index.erase(it);
  }
  if (derived.has_value()) s.gain_memo[e.group] = *derived;
  s.bytes += e.bytes;
  s.lru.push_front(std::move(e));
  s.index[s.lru.front().key] = s.lru.begin();
  ++s.stats.insertions;
  evict_locked(s);
}

void SolutionCache::evict_locked(Shard& s) {
  while (s.lru.size() > per_shard_capacity_ ||
         (per_shard_bytes_ != 0 && s.bytes > per_shard_bytes_ && s.lru.size() > 1)) {
    const Entry& victim = s.lru.back();
    s.bytes -= victim.bytes;
    s.index.erase(victim.key);
    s.lru.pop_back();
    ++s.stats.evictions;
  }
}

void SolutionCache::invalidate_all() {
  generation_.fetch_add(1);
  for (auto& sp : shards_) {
    std::lock_guard<std::mutex> g(sp->mu);
    ++sp->stats.invalidations;
    sp->gain_memo.clear();
  }
}

CacheStats SolutionCache::stats() const {
  CacheStats total;
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> g(sp->mu);
    const CacheStats& cs = sp->stats;
    total.lookups += cs.lookups;
    total.hits += cs.hits;
    total.misses += cs.misses;
    total.neighbor_hits += cs.neighbor_hits;
    total.gain_memo_hits += cs.gain_memo_hits;
    total.insertions += cs.insertions;
    total.evictions += cs.evictions;
    total.stale += cs.stale;
    total.invalidations += cs.invalidations;
    total.entries += sp->lru.size();
    total.bytes += sp->bytes;
  }
  return total;
}

}  // namespace partita::service

#include "service/solution_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <sstream>

#include "support/json.hpp"

namespace partita::service {

namespace {

namespace json = partita::support::json;

constexpr const char* kSnapshotFormat = "partita-cache-snapshot-v1";

/// Serializes the answer-defining Selection fields (exactly the set
/// solution_signature covers, plus the honesty labels). Solver
/// observability counters are not persisted: a reloaded hit reports fresh
/// (zero) search counters, like any served cache hit conceptually should.
void selection_json(std::ostringstream& os, const select::Selection& sel) {
  os << "{\"feasible\": " << (sel.feasible ? "true" : "false") << ", \"chosen\": [";
  for (std::size_t i = 0; i < sel.chosen.size(); ++i) {
    os << (i ? ", " : "") << sel.chosen[i];
  }
  os << "], \"ips\": [";
  for (std::size_t i = 0; i < sel.ips_used.size(); ++i) {
    os << (i ? ", " : "") << sel.ips_used[i].value;
  }
  os << "], \"ip_area\": " << json::fmt_double(sel.ip_area)
     << ", \"interface_area\": " << json::fmt_double(sel.interface_area)
     << ", \"ip_power\": " << json::fmt_double(sel.ip_power)
     << ", \"interface_power\": " << json::fmt_double(sel.interface_power)
     << ", \"s_instructions\": " << sel.s_instructions
     << ", \"selected_scalls\": " << sel.selected_scalls
     << ", \"min_path_gain\": " << sel.min_path_gain
     << ", \"truncated\": " << (sel.truncated ? "true" : "false")
     << ", \"greedy_fallback\": " << (sel.greedy_fallback ? "true" : "false")
     << ", \"optimality_gap\": " << json::fmt_double(sel.optimality_gap)
     << ", \"rung\": " << static_cast<int>(sel.rung)
     << ", \"detail\": " << json::quote(sel.degradation_detail) << "}";
}

bool selection_from_json(const json::Object& o, select::Selection* out) {
  select::Selection sel;
  sel.feasible = json::bool_or(o, "feasible", false);
  const json::Array* chosen = json::array_or_null(o, "chosen");
  const json::Array* ips = json::array_or_null(o, "ips");
  if (!chosen || !ips) return false;
  for (const json::Value& v : *chosen) {
    if (!v.is_number()) return false;
    sel.chosen.push_back(static_cast<isel::ImpIndex>(v.number()));
  }
  for (const json::Value& v : *ips) {
    if (!v.is_number()) return false;
    sel.ips_used.push_back(iplib::IpId{static_cast<std::uint32_t>(v.number())});
  }
  sel.ip_area = json::num_or(o, "ip_area", 0.0);
  sel.interface_area = json::num_or(o, "interface_area", 0.0);
  sel.ip_power = json::num_or(o, "ip_power", 0.0);
  sel.interface_power = json::num_or(o, "interface_power", 0.0);
  sel.s_instructions = static_cast<int>(json::int_or(o, "s_instructions", 0));
  sel.selected_scalls = static_cast<int>(json::int_or(o, "selected_scalls", 0));
  sel.min_path_gain = json::int_or(o, "min_path_gain", 0);
  sel.truncated = json::bool_or(o, "truncated", false);
  sel.greedy_fallback = json::bool_or(o, "greedy_fallback", false);
  sel.optimality_gap = json::num_or(o, "optimality_gap", 0.0);
  const std::int64_t rung = json::int_or(o, "rung", -1);
  if (rung < 0 || rung > static_cast<std::int64_t>(select::DegradationRung::kInfeasible)) {
    return false;
  }
  sel.rung = static_cast<select::DegradationRung>(rung);
  sel.degradation_detail = json::string_or(o, "detail", "");
  *out = std::move(sel);
  return true;
}

std::int64_t l1_distance(const std::vector<std::int64_t>& a,
                         const std::vector<std::int64_t>& b) {
  if (a.size() != b.size()) return std::numeric_limits<std::int64_t>::max();
  std::int64_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::int64_t step = a[i] > b[i] ? a[i] - b[i] : b[i] - a[i];
    if (d > std::numeric_limits<std::int64_t>::max() - step) {
      return std::numeric_limits<std::int64_t>::max();
    }
    d += step;
  }
  return d;
}

}  // namespace

std::string SolutionCache::Key::group() const {
  std::string s = tenant;
  s += '|';
  s += structure.hex();
  s += '|';
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(options_digest));
  s += buf;
  return s;
}

std::string SolutionCache::Key::str() const {
  std::string s = group();
  s += '|';
  for (std::size_t i = 0; i < gains.size(); ++i) {
    if (i) s += ',';
    s += std::to_string(gains[i]);
  }
  return s;
}

SolutionCache::SolutionCache(Config cfg) : cfg_(cfg) {
  const int n = std::max(1, cfg_.shards);
  cfg_.shards = n;
  if (cfg_.capacity == 0) cfg_.capacity = 1;
  per_shard_capacity_ =
      std::max<std::size_t>(1, (cfg_.capacity + n - 1) / static_cast<std::size_t>(n));
  per_shard_bytes_ =
      cfg_.max_bytes == 0 ? 0 : std::max<std::size_t>(1, cfg_.max_bytes / n);
  shards_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

SolutionCache::Shard& SolutionCache::shard_for(const Key& key) {
  // Shard by GROUP, not full key: all gains-variants of one structure land
  // in one shard so the neighbor scan stays shard-local.
  return shard_for_group(key.group());
}

SolutionCache::Shard& SolutionCache::shard_for_group(const std::string& g) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (const char c : g) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return *shards_[h % shards_.size()];
}

std::size_t SolutionCache::entry_bytes(const Entry& e) {
  std::size_t b = sizeof(Entry) + e.key.size() + e.group.size();
  b += e.resolved_gains.size() * sizeof(std::int64_t);
  b += e.selection.chosen.size() * sizeof(isel::ImpIndex);
  b += e.selection.ips_used.size() * sizeof(iplib::IpId);
  b += e.selection.degradation_detail.size();
  const ilp::BatchContext& a = e.artifacts;
  b += a.root_basis.status.size();
  b += a.incumbent.size() * sizeof(double);
  for (int d = 0; d < 2; ++d) {
    b += a.pc_sum[d].size() * sizeof(double);
    b += a.pc_cnt[d].size() * sizeof(int);
  }
  for (const auto& c : a.cliques) b += c.size() * sizeof(ilp::VarIndex);
  for (const auto& vc : a.var_cliques) b += vc.size() * sizeof(std::uint32_t);
  return b;
}

std::optional<select::Selection> SolutionCache::lookup(const Key& key) {
  Shard& s = shard_for(key);
  const std::string k = key.str();
  const std::uint64_t gen = generation_.load();
  std::lock_guard<std::mutex> g(s.mu);
  ++s.stats.lookups;
  const auto it = s.index.find(k);
  if (it == s.index.end()) {
    ++s.stats.misses;
    return std::nullopt;
  }
  if (it->second->generation != gen) {
    // Outdated by invalidate_all(): drop lazily, count both stale and miss
    // so hits + misses == lookups stays an invariant.
    s.bytes -= it->second->bytes;
    s.lru.erase(it->second);
    s.index.erase(it);
    ++s.stats.stale;
    ++s.stats.misses;
    return std::nullopt;
  }
  ++s.stats.hits;
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // refresh recency
  return it->second->selection;
}

CacheSeed SolutionCache::nearest(const Key& key,
                                 const std::vector<std::int64_t>& resolved_gains) {
  Shard& s = shard_for(key);
  const std::string group = key.group();
  const std::uint64_t gen = generation_.load();
  CacheSeed seed;
  std::lock_guard<std::mutex> g(s.mu);
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  const Entry* best_entry = nullptr;
  for (const Entry& e : s.lru) {
    if (e.generation != gen || e.group != group) continue;
    const std::int64_t d = l1_distance(resolved_gains, e.resolved_gains);
    if (d < best) {
      best = d;
      best_entry = &e;
    }
  }
  if (best_entry == nullptr) return seed;
  seed.valid = true;
  seed.artifacts = best_entry->artifacts;
  seed.artifacts.carry_search_state = true;
  seed.distance = best;
  ++s.stats.neighbor_hits;
  return seed;
}

std::optional<std::int64_t> SolutionCache::derived_gain(const Key& key) {
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> g(s.mu);
  const auto it = s.gain_memo.find(key.group());
  if (it == s.gain_memo.end()) return std::nullopt;
  ++s.stats.gain_memo_hits;
  return it->second;
}

void SolutionCache::insert(const Key& key, const select::Selection& sel,
                           ilp::BatchContext artifacts,
                           const std::vector<std::int64_t>& resolved_gains,
                           std::optional<std::int64_t> derived) {
  Shard& s = shard_for(key);
  Entry e;
  e.key = key.str();
  e.group = key.group();
  e.resolved_gains = resolved_gains;
  e.selection = sel;
  e.artifacts = std::move(artifacts);
  e.artifacts.carry_search_state = true;
  e.generation = generation_.load();
  e.bytes = entry_bytes(e);

  std::lock_guard<std::mutex> g(s.mu);
  const auto it = s.index.find(e.key);
  if (it != s.index.end()) {
    // Refresh in place (same key can be re-inserted after a stale drop or a
    // racing double-miss); recency moves to the front.
    s.bytes -= it->second->bytes;
    s.lru.erase(it->second);
    s.index.erase(it);
  }
  if (derived.has_value()) s.gain_memo[e.group] = *derived;
  s.bytes += e.bytes;
  s.lru.push_front(std::move(e));
  s.index[s.lru.front().key] = s.lru.begin();
  ++s.stats.insertions;
  evict_locked(s);
}

void SolutionCache::evict_locked(Shard& s) {
  while (s.lru.size() > per_shard_capacity_ ||
         (per_shard_bytes_ != 0 && s.bytes > per_shard_bytes_ && s.lru.size() > 1)) {
    const Entry& victim = s.lru.back();
    s.bytes -= victim.bytes;
    s.index.erase(victim.key);
    s.lru.pop_back();
    ++s.stats.evictions;
  }
}

void SolutionCache::invalidate_all() {
  generation_.fetch_add(1);
  for (auto& sp : shards_) {
    std::lock_guard<std::mutex> g(sp->mu);
    ++sp->stats.invalidations;
    sp->gain_memo.clear();
  }
}

std::string SolutionCache::export_snapshot() const {
  const std::uint64_t gen = generation_.load();
  std::ostringstream entries;
  std::ostringstream memos;
  std::size_t count = 0;
  bool first_memo = true;
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> g(sp->mu);
    for (const Entry& e : sp->lru) {
      if (e.generation != gen) continue;  // invalidated: never resurfaces
      entries << (count ? ", " : "") << "{\"key\": " << json::quote(e.key)
              << ", \"group\": " << json::quote(e.group) << ", \"gains\": [";
      for (std::size_t i = 0; i < e.resolved_gains.size(); ++i) {
        entries << (i ? ", " : "") << e.resolved_gains[i];
      }
      entries << "], \"sel\": ";
      selection_json(entries, e.selection);
      entries << "}";
      ++count;
    }
    for (const auto& [group, gain] : sp->gain_memo) {
      memos << (first_memo ? "" : ", ") << "[" << json::quote(group) << ", "
            << gain << "]";
      first_memo = false;
    }
  }
  if (count == 0 && first_memo) return "";
  std::ostringstream os;
  os << "{\"v\": " << json::quote(kSnapshotFormat) << ", \"entries\": ["
     << entries.str() << "], \"gain_memo\": [" << memos.str() << "]}";
  return os.str();
}

std::size_t SolutionCache::import_snapshot(const std::string& data) {
  const auto doc = json::parse(data);
  if (!doc || !doc->is_object()) return 0;
  const json::Object& o = doc->object();
  if (json::string_or(o, "v", "") != kSnapshotFormat) return 0;
  const std::uint64_t gen = generation_.load();
  std::size_t imported = 0;
  if (const json::Array* entries = json::array_or_null(o, "entries")) {
    for (const json::Value& v : *entries) {
      if (!v.is_object()) continue;
      const json::Object& eo = v.object();
      Entry e;
      e.key = json::string_or(eo, "key", "");
      e.group = json::string_or(eo, "group", "");
      if (e.key.empty() || e.group.empty()) continue;
      const json::Array* gains = json::array_or_null(eo, "gains");
      if (!gains) continue;
      bool ok = true;
      for (const json::Value& gv : *gains) {
        if (!gv.is_number()) {
          ok = false;
          break;
        }
        e.resolved_gains.push_back(static_cast<std::int64_t>(gv.number()));
      }
      const json::Object* sel = json::object_or_null(eo, "sel");
      if (!ok || !sel || !selection_from_json(*sel, &e.selection)) continue;
      e.artifacts.carry_search_state = true;
      e.generation = gen;
      e.bytes = entry_bytes(e);
      Shard& s = shard_for_group(e.group);
      std::lock_guard<std::mutex> g(s.mu);
      const auto it = s.index.find(e.key);
      if (it != s.index.end()) {
        s.bytes -= it->second->bytes;
        s.lru.erase(it->second);
        s.index.erase(it);
      }
      s.bytes += e.bytes;
      s.lru.push_front(std::move(e));
      s.index[s.lru.front().key] = s.lru.begin();
      ++s.stats.insertions;
      evict_locked(s);
      ++imported;
    }
  }
  if (const json::Array* memo = json::array_or_null(o, "gain_memo")) {
    for (const json::Value& v : *memo) {
      if (!v.is_array() || v.array().size() != 2 || !v.array()[0].is_string() ||
          !v.array()[1].is_number()) {
        continue;
      }
      const std::string& group = v.array()[0].string();
      Shard& s = shard_for_group(group);
      std::lock_guard<std::mutex> g(s.mu);
      s.gain_memo[group] = static_cast<std::int64_t>(v.array()[1].number());
    }
  }
  return imported;
}

CacheStats SolutionCache::stats() const {
  CacheStats total;
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> g(sp->mu);
    const CacheStats& cs = sp->stats;
    total.lookups += cs.lookups;
    total.hits += cs.hits;
    total.misses += cs.misses;
    total.neighbor_hits += cs.neighbor_hits;
    total.gain_memo_hits += cs.gain_memo_hits;
    total.insertions += cs.insertions;
    total.evictions += cs.evictions;
    total.stale += cs.stale;
    total.invalidations += cs.invalidations;
    total.entries += sp->lru.size();
    total.bytes += sp->bytes;
  }
  return total;
}

}  // namespace partita::service

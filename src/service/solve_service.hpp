// Long-running, in-process S-instruction selection service.
//
// Every entry point before this layer was one-shot: one workload in, one
// selection out, and any failure took the whole process down. SolveService
// turns the library into a request/response system: a fixed worker pool
// drains a bounded admission queue of selection requests, running each one
// through the existing select::Flow / select::Selector pipeline (which is
// re-entrant; see selector.hpp). The robustness contract is the point:
//
//   * Exactly-one-terminal-state: every submitted request ends in exactly
//     one of completed / cancelled / rejected / failed, and wait(ticket)
//     always returns. Workers never die: exceptions, injected faults and
//     resource exhaustion are quarantined per-request.
//   * Cooperative cancellation: a per-request support::CancelToken is
//     threaded into ilp::ResourceBudget and observed at branch & bound wave
//     boundaries, so cancel(ticket) terminates a running solve within one
//     wave (bounded latency), and dequeues a queued one immediately.
//   * Admission control with load shedding: a full queue or an exhausted
//     aggregate solver-memory budget rejects the request *at submit* with a
//     retry-after hint, so one huge instance cannot starve the pool.
//   * Retry on transient faults: attempts that fail with
//     ErrorKind::kTransient re-run under support::RetryPolicy (exponential
//     backoff + deterministic seeded jitter) on a progressively lower
//     degradation rung (shrinking node budget), so a persistent fault still
//     converges to a terminal answer instead of looping.
//   * Crash isolation + replayable quarantine: a request that exhausts its
//     retries records a structured support::Error, and -- when it carries an
//     InstanceSpec -- a PR-3 oracle fixture (partita-oracle-fixture-v1) is
//     written to the quarantine directory for offline replay via
//     `partita_fuzz --replay`.
//   * Graceful drain: drain() stops admission and blocks until everything
//     already admitted reached its natural terminal state (cancel tickets
//     first for a fast abort); shutdown() additionally joins the pool.
//
// All timing (deadlines via the per-request budget, retry backoff) goes
// through an injectable support::Clock, so the robustness tests run on a
// FakeClock with zero real sleeps.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "select/flow.hpp"
#include "support/cancel.hpp"
#include "support/clock.hpp"
#include "support/result.hpp"
#include "support/retry.hpp"
#include "workloads/random_workload.hpp"
#include "workloads/workloads.hpp"

namespace partita::service {

/// Request lifecycle:  submitted -> (rejected) | queued -> running -> one of
/// completed / cancelled / failed. Rejected requests are terminal at submit.
enum class RequestState : std::uint8_t {
  kQueued,
  kRunning,
  kCompleted,  // terminal: a Selection (possibly degraded-rung) was produced
  kCancelled,  // terminal: caller cancelled (queued or mid-solve) or drain
  kRejected,   // terminal: admission control shed the request at submit
  kFailed,     // terminal: structured Error after exhausting retries
};

/// Display name: "queued", "running", "completed", "cancelled", "rejected",
/// "failed".
const char* to_string(RequestState s);

inline bool is_terminal(RequestState s) {
  return s == RequestState::kCompleted || s == RequestState::kCancelled ||
         s == RequestState::kRejected || s == RequestState::kFailed;
}

/// One selection request: a workload (owned by the request), the required
/// gain, and the solve options (budget, threads, problem variant). The
/// service installs its own cancel token and clock into options.ilp.budget;
/// everything else is honored verbatim, so a service solve is bit-identical
/// to a one-shot Flow::select with the same options.
struct SolveRequest {
  std::string label;
  workloads::Workload workload;
  /// When present, a failed request dumps this spec as a replayable oracle
  /// fixture into ServiceConfig::quarantine_dir.
  std::optional<workloads::InstanceSpec> spec;
  /// Uniform required gain; < 0 derives max_feasible_gain / 2 (the CLI
  /// default) under the same options.
  std::int64_t required_gain = -1;
  select::SelectOptions options;
};

/// The terminal record of one request. `selection` is meaningful only for
/// kCompleted; `error` for kFailed and kRejected; `retry_after_seconds` for
/// kRejected; `quarantine_fixture` for failed spec-carrying requests.
struct SolveResponse {
  std::uint64_t ticket = 0;
  std::string label;
  RequestState state = RequestState::kQueued;
  select::Selection selection;
  support::Error error;
  double retry_after_seconds = 0.0;
  /// Solve attempts actually started (1 for a clean run; retries add more).
  int attempts = 0;
  std::string quarantine_fixture;
};

/// A batch of related selection requests over ONE workload: one item per
/// required gain, solved sequentially on a single worker through
/// Selector::select_batch, which amortizes the model build, the presolve
/// clique table and chained root-LP bases across items. Each item still gets
/// its own ticket, terminal state and cancel token (a cancelled item is
/// skipped if not yet started, or stopped at the next wave boundary if it is
/// the one running). Batch items trade the per-request retry ladder for
/// throughput: a failing batch marks its remaining items failed once.
struct BatchSolveRequest {
  std::string label;
  workloads::Workload workload;
  /// One item per entry; a negative gain derives max_feasible_gain / 2 once
  /// for the whole batch (amortized, unlike per-request derivation).
  std::vector<std::int64_t> required_gains;
  select::SelectOptions options;
};

struct ServiceConfig {
  /// Fixed worker pool size (each worker runs one request at a time; the
  /// request's own opt.ilp.threads parallelizes inside the solve).
  int workers = 2;
  /// Queued (not yet running) requests beyond this are rejected.
  std::size_t max_queue_depth = 16;
  /// Aggregate solver-memory charge (sum over queued + running requests) the
  /// service admits; 0 disables. A request's charge is its
  /// options.ilp.budget.memory_limit_bytes, or default_memory_charge when it
  /// set no cap -- so one huge declared instance is shed instead of starving
  /// everyone else.
  std::size_t max_admitted_memory_bytes = 0;
  std::size_t default_memory_charge = std::size_t{64} << 20;
  /// Base of the rejection retry-after hint; scaled by queue pressure.
  double retry_after_seconds = 0.05;
  support::RetryPolicy retry;
  /// Clock for deadlines and backoff; null means Clock::system().
  support::Clock* clock = nullptr;
  /// Directory for quarantine fixtures of failed spec requests; "" disables.
  std::string quarantine_dir;
  /// Start with the workers parked: requests queue up (and admission control
  /// applies) but nothing runs until resume(). Deterministic tests use this
  /// to fill the queue race-free.
  bool start_paused = false;
};

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failed = 0;
  std::uint64_t retries = 0;  // extra attempts beyond the first, all requests
  std::size_t peak_queue_depth = 0;
  std::size_t peak_admitted_memory_bytes = 0;
  // Batched admission mode.
  std::uint64_t batches = 0;      // batch jobs admitted
  std::uint64_t batch_items = 0;  // items across all admitted batches
  std::uint64_t batch_amortized_hits = 0;  // solver artifacts reused across
                                           // items (sum of batch_hits)
};

class SolveService {
 public:
  explicit SolveService(ServiceConfig config);
  /// Drains (flushing whatever is still queued or running) and joins.
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Admits or rejects the request. Always returns a ticket; a rejected
  /// request's ticket is already terminal (kRejected with a retry-after
  /// hint), so every submission reaches exactly one terminal state.
  std::uint64_t submit(SolveRequest request);

  /// Admits or rejects the batch as one unit (one queue slot, one memory
  /// charge) and returns one ticket per item, in required_gains order. Every
  /// ticket is individually waitable, pollable and cancellable; a rejected
  /// batch returns already-terminal kRejected tickets. An empty batch
  /// returns no tickets.
  std::vector<std::uint64_t> submit_batch(BatchSolveRequest request);

  /// Requests cancellation. A queued request becomes terminal immediately;
  /// a running one is signalled through its CancelToken and terminates
  /// within one wave boundary. Returns false when the ticket is unknown or
  /// already terminal.
  bool cancel(std::uint64_t ticket);

  /// Blocks until the request is terminal and returns its response.
  /// Unknown tickets fail immediately with a kFailed response.
  SolveResponse wait(std::uint64_t ticket);

  /// Non-blocking snapshot; nullopt for unknown tickets.
  std::optional<SolveResponse> poll(std::uint64_t ticket) const;

  /// Unparks the workers of a start_paused service.
  void resume();

  /// Stops admission and blocks until every admitted request reached its
  /// natural terminal state (queued ones still run; cancel them first for a
  /// fast abort). Afterwards the pool rejects all further submits.
  void drain();

  /// drain() + worker join. Idempotent; the destructor calls it.
  void shutdown();

  ServiceStats stats() const;

 private:
  struct Entry {
    SolveRequest request;  // released (workload freed) at terminal state
    SolveResponse response;
    support::CancelSource cancel;
    std::size_t memory_charge = 0;
    bool live = false;  // admitted and not yet terminal
    /// Leader ticket of the batch this entry belongs to (0: not batched).
    /// The leader's ticket doubles as the job key in jobs_ and the queue.
    std::uint64_t batch_leader = 0;
  };

  /// One admitted batch, keyed in jobs_ by its leader (first) ticket, which
  /// is also the ticket sitting in queue_ for it.
  struct BatchJob {
    workloads::Workload workload;
    select::SelectOptions options;
    std::vector<std::int64_t> gains;
    std::vector<std::uint64_t> tickets;
  };

  void worker_main();
  /// Runs one dequeued batch job: marks live members running, solves them
  /// through Selector::select_batch outside the lock, then finalizes each
  /// member. `lk` is held on entry and on return.
  void run_batch(std::unique_lock<std::mutex>& lk, BatchJob job);
  /// Runs the attempt/retry loop for one request into `out` (a worker-local
  /// response merged back under the lock -- the shared Entry::response is
  /// never written without mu_, so poll() snapshots race-free). Returns the
  /// terminal state. Never throws.
  RequestState run_request(const SolveRequest& request,
                           const support::CancelSource& cancel,
                           SolveResponse& out);
  support::Result<select::Selection> run_attempt(const SolveRequest& request,
                                                 const support::CancelSource& cancel,
                                                 int attempt);
  /// Marks the entry terminal, releases its admission charge and workload,
  /// and wakes waiters. Caller holds mu_.
  void finalize_locked(Entry& entry, RequestState state);

  ServiceConfig cfg_;
  support::Clock& clock_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers: queue / pause / stop
  std::condition_variable done_cv_;  // waiters: entry became terminal
  std::map<std::uint64_t, Entry> entries_;
  std::map<std::uint64_t, BatchJob> jobs_;  // queued batches by leader ticket
  std::deque<std::uint64_t> queue_;
  std::uint64_t next_ticket_ = 0;
  std::size_t admitted_memory_ = 0;  // charge of queued + running requests
  std::size_t live_count_ = 0;       // non-terminal entries
  bool paused_ = false;
  bool draining_ = false;
  bool stopping_ = false;
  ServiceStats stats_;

  std::vector<std::thread> workers_;
};

}  // namespace partita::service

// Long-running, in-process S-instruction selection service.
//
// Every entry point before this layer was one-shot: one workload in, one
// selection out, and any failure took the whole process down. SolveService
// turns the library into a request/response system: a fixed worker pool
// drains an admitted pending set of selection requests, running each one
// through the existing select::Flow / select::Selector pipeline (which is
// re-entrant; see selector.hpp). The robustness contract is the point:
//
//   * Exactly-one-terminal-state: every submitted request ends in exactly
//     one of completed / cancelled / rejected / failed, and wait(ticket)
//     always returns. Workers never die: exceptions, injected faults and
//     resource exhaustion are quarantined per-request.
//   * Cooperative cancellation: a per-request support::CancelToken is
//     threaded into ilp::ResourceBudget and observed at branch & bound wave
//     boundaries, so cancel(ticket) terminates a running solve within one
//     wave (bounded latency), and dequeues a queued one immediately.
//   * Admission control with pluggable scheduling: which requests are shed
//     at submit and which pending request runs next are decided by a
//     service::SchedulerPolicy ("fifo" default, "priority", "edf",
//     "rejecter"; see scheduler.hpp) selected by name in ServiceConfig.
//     A rejection carries a retry-after hint derived from the *observed*
//     queue drain rate (DrainRateEstimator), so shed clients back off
//     proportionally to real load, not a constant.
//   * Multi-tenant quotas: requests declare a tenant id; an optional
//     per-tenant live-request cap rejects the over-quota tenant's request
//     at submit without disturbing anyone else's traffic.
//   * Retry on transient faults: attempts that fail with
//     ErrorKind::kTransient re-run under support::RetryPolicy (exponential
//     backoff + deterministic seeded jitter) on a progressively lower
//     degradation rung (shrinking node budget), so a persistent fault still
//     converges to a terminal answer instead of looping.
//   * Crash isolation + replayable quarantine: a request that exhausts its
//     retries records a structured support::Error, and -- when it carries an
//     InstanceSpec -- a PR-3 oracle fixture (partita-oracle-fixture-v1) is
//     written to the quarantine directory for offline replay via
//     `partita_fuzz --replay`.
//   * Graceful drain: drain() stops admission and blocks until everything
//     already admitted reached its natural terminal state (cancel tickets
//     first for a fast abort); shutdown() additionally joins the pool.
//   * Durability (optional; see service/journal.hpp and docs/durability.md):
//     with a Journal configured, every admitted request is appended to the
//     write-ahead journal BEFORE submit() returns its ticket, and every
//     terminal transition appends a matching terminal record. A process
//     killed mid-storm therefore loses no acknowledged request: boot-time
//     recovery replays the undecided admits through normal admission under
//     their original tenant/priority/deadline envelopes. Long solves
//     additionally checkpoint their branch & bound frontier at wave
//     boundaries (ilp/checkpoint.hpp) so a recovered request resumes the
//     search instead of restarting it cold -- with answers bit-identical to
//     an uninterrupted run (canonical tie-breaking).
//
// All timing (deadlines via the per-request budget, retry backoff, the
// scheduler's aging/EDF decisions, the drain-rate estimator) goes through an
// injectable support::Clock, so the robustness tests run on a FakeClock with
// zero real sleeps.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "select/flow.hpp"
#include "service/scheduler.hpp"
#include "service/solution_cache.hpp"
#include "support/cancel.hpp"
#include "support/clock.hpp"
#include "support/result.hpp"
#include "support/retry.hpp"
#include "workloads/random_workload.hpp"
#include "workloads/workloads.hpp"

namespace partita::service {

class Journal;  // service/journal.hpp

/// The one request envelope, shared by the in-process API, the wire
/// protocol (partita-wire-v1) and the script drivers: a workload, scheduling
/// metadata (tenant, priority class, optional deadline) and the solve
/// options (budget, threads, problem variant). The service installs its own
/// cancel token and clock into options.ilp.budget; everything else is
/// honored verbatim, so a service solve is bit-identical to a one-shot
/// Flow::select with the same options.
///
/// Single vs batch: an empty `required_gains` submits ONE request at
/// `required_gain`. A non-empty `required_gains` submits a batch over the
/// same workload -- one ticket per gain, one admission slot, solved
/// sequentially on one worker through Selector::select_batch (amortized
/// model build / clique table / chained root bases). Batch items trade the
/// per-request retry ladder for throughput: a failing batch marks its
/// remaining items failed once.
struct SolveRequest {
  std::string label;
  workloads::Workload workload;
  /// When present, a failed request dumps this spec as a replayable oracle
  /// fixture into ServiceConfig::quarantine_dir.
  std::optional<workloads::InstanceSpec> spec;
  /// Uniform required gain; < 0 derives max_feasible_gain / 2 (the CLI
  /// default) under the same options. Ignored when required_gains is set.
  std::int64_t required_gain = -1;
  /// Batch mode: one item per entry; a negative gain derives
  /// max_feasible_gain / 2 once for the whole batch.
  std::vector<std::int64_t> required_gains;
  select::SelectOptions options;

  // --- scheduling metadata (consumed by the SchedulerPolicy) ---------------
  /// Tenant id for quota accounting; "" = anonymous (still quota'd as one
  /// tenant when a per-tenant cap is configured).
  std::string tenant;
  /// Priority class (0 interactive .. 2 batch; see scheduler.hpp), clamped
  /// at submit.
  int priority = kPriorityStandard;
  /// Soft completion deadline in seconds from submission; 0 = none. Used by
  /// the "edf" policy for ordering (an overdue request is not auto-killed;
  /// its own solver budget governs termination).
  double deadline_seconds = 0.0;

  // --- durability (consumed only when ServiceConfig::journal is set) -------
  /// Opaque wire encoding of this request, journaled verbatim at admission
  /// so recovery can reconstruct the exact envelope. The service never
  /// parses it. Empty = the request is not journaled (in-process callers
  /// that opt out).
  std::string journal_payload;
  /// 0: assign a fresh journal seq at admission. Non-zero: this request IS
  /// a replay of an already-journaled admit (boot recovery compacted its
  /// record already), so admission must not re-append it.
  std::uint64_t journal_seq = 0;
  /// True for requests re-admitted by boot recovery; echoed on the
  /// response (and the wire) so clients can tell a replayed answer.
  bool recovered = false;
};

/// The outcome of one submit: every issued ticket (one for a single
/// request, one per item for a batch) plus the immediate admission verdict.
/// kQueued means admitted; kRejected tickets are already terminal and carry
/// the drain-rate-derived retry-after hint. Converts to the leading ticket
/// id so call sites that only track tickets keep working.
struct SubmitOutcome {
  std::vector<std::uint64_t> tickets;
  RequestState state = RequestState::kQueued;
  double retry_after_seconds = 0.0;
  std::string reject_reason;

  bool admitted() const { return state == RequestState::kQueued; }
  std::uint64_t ticket() const { return tickets.empty() ? 0 : tickets.front(); }
  operator std::uint64_t() const { return ticket(); }  // NOLINT(google-explicit-constructor)
};

/// The terminal record of one request. `selection` is meaningful only for
/// kCompleted; `error` for kFailed and kRejected; `retry_after_seconds` for
/// kRejected; `quarantine_fixture` for failed spec-carrying requests.
struct SolveResponse {
  std::uint64_t ticket = 0;
  std::string label;
  RequestState state = RequestState::kQueued;
  select::Selection selection;
  support::Error error;
  double retry_after_seconds = 0.0;
  /// Solve attempts actually started (1 for a clean run; retries add more).
  int attempts = 0;
  std::string quarantine_fixture;
  /// Solution-cache outcome for this request: "" (cache disabled or batch),
  /// "bypass" (cache on but the request is uncacheable, e.g. imp_filter),
  /// "hit" (served verbatim from the cache), "neighbor" (cold answer, but a
  /// cached neighbor's artifacts seeded the solve), "miss" (cold solve).
  /// Every non-"hit" answer is a real solve; "hit" answers were inserted by
  /// a completed solve with an identical key, so all outcomes are
  /// bit-identical to a cold solve (see docs/caching.md).
  std::string cache;
  /// True when this request was replayed from the write-ahead journal after
  /// a crash (its original acknowledgment predates this process).
  bool recovered = false;
};

/// DEPRECATED: use SolveRequest::required_gains. Kept as a thin alias shape
/// for pre-wire callers of submit_batch; the fields duplicate SolveRequest.
struct BatchSolveRequest {
  std::string label;
  workloads::Workload workload;
  std::vector<std::int64_t> required_gains;
  select::SelectOptions options;
};

struct ServiceConfig {
  /// Fixed worker pool size (each worker runs one request at a time; the
  /// request's own opt.ilp.threads parallelizes inside the solve).
  int workers = 2;
  /// Scheduling policy name: "fifo" (default), "priority", "edf",
  /// "rejecter". Unknown names fall back to fifo.
  std::string policy = "fifo";
  /// Queued (not yet running) requests beyond this are shed (how is the
  /// policy's call: fifo/priority/edf reject the arrival, rejecter evicts
  /// the lowest class first).
  std::size_t max_queue_depth = 16;
  /// Aggregate solver-memory charge (sum over queued + running requests) the
  /// service admits; 0 disables. A request's charge is its
  /// options.ilp.budget.memory_limit_bytes, or default_memory_charge when it
  /// set no cap -- so one huge declared instance is shed instead of starving
  /// everyone else.
  std::size_t max_admitted_memory_bytes = 0;
  std::size_t default_memory_charge = std::size_t{64} << 20;
  /// Per-tenant cap on live (queued + running) requests; 0 disables.
  std::size_t max_live_per_tenant = 0;
  /// Seed of the drain-rate estimator behind the rejection retry-after
  /// hint: the assumed per-request service interval before any completion
  /// has been observed.
  double retry_after_seconds = 0.05;
  /// Priority-policy aging knobs (see SchedulerLimits).
  double age_promote_seconds = 5.0;
  double max_wait_seconds = 30.0;
  support::RetryPolicy retry;
  /// Clock for deadlines, backoff and scheduling; null means Clock::system().
  support::Clock* clock = nullptr;
  /// Directory for quarantine fixtures of failed spec requests; "" disables.
  std::string quarantine_dir;
  /// Start with the workers parked: requests queue up (and admission control
  /// applies) but nothing runs until resume(). Deterministic tests use this
  /// to fill the queue race-free.
  bool start_paused = false;

  // --- cross-request solution cache (see service/solution_cache.hpp) ------
  /// Enables the read-through cache of completed Selections. Off by default:
  /// pre-cache behavior (every request re-solves) is unchanged.
  bool cache_enabled = false;
  /// Entry / byte bounds and shard count, forwarded to SolutionCache.
  std::size_t cache_capacity = 256;
  std::size_t cache_max_bytes = std::size_t{64} << 20;
  int cache_shards = 4;
  /// Seed near-misses from the nearest cached neighbor's solver artifacts
  /// (bases, pseudo-costs, cliques, incumbents). Answer-safe: a seeded
  /// search that truncates is redone cold before answering.
  bool cache_neighbor_seeding = true;

  // --- durability (see service/journal.hpp, docs/durability.md) ------------
  /// Write-ahead journal; null disables durability (pre-journal behavior is
  /// unchanged). Not owned. The service appends under its own mutex, so one
  /// journal serves one service.
  Journal* journal = nullptr;
  /// Directory for branch & bound checkpoints of journaled requests; ""
  /// disables checkpointing (recovered requests then re-solve cold).
  std::string checkpoint_dir;
  /// Checkpoint cadence in solver waves (ilp::IlpOptions forward); <= 0
  /// disables.
  int checkpoint_every_waves = 0;
};

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failed = 0;
  /// Subset of `rejected`: admitted-then-shed by the rejecter policy.
  std::uint64_t evicted = 0;
  std::uint64_t retries = 0;  // extra attempts beyond the first, all requests
  std::size_t peak_queue_depth = 0;
  std::size_t peak_admitted_memory_bytes = 0;
  // Batched admission mode.
  std::uint64_t batches = 0;      // batch jobs admitted
  std::uint64_t batch_items = 0;  // items across all admitted batches
  std::uint64_t batch_amortized_hits = 0;  // solver artifacts reused across
                                           // items (sum of batch_hits)
  // Cross-request solution cache (all zero while cache_enabled is false).
  // Invariants: cache_hits + cache_misses == cache_lookups;
  // cache_neighbor_seeds <= cache_misses; evictions/stale are monotone.
  std::uint64_t cache_lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_neighbor_seeds = 0;  // misses seeded from a neighbor
  std::uint64_t cache_insertions = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_stale = 0;           // entries dropped after invalidation
  std::uint64_t cache_seed_fallbacks = 0;  // seeded solves redone cold after
                                           // a truncation (answer-safety)
  // Durability (all zero without a configured journal).
  std::uint64_t recovered_requests = 0;  // admits replayed by boot recovery
  std::uint64_t journal_rejects = 0;     // submits refused because the WAL
                                         // append failed (never acknowledged)
};

class SolveService {
 public:
  explicit SolveService(ServiceConfig config);
  /// Drains (flushing whatever is still queued or running) and joins.
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Admits or rejects the request (single or batch; see SolveRequest).
  /// Always issues tickets; a rejected outcome's tickets are already
  /// terminal (kRejected with a retry-after hint), so every submission
  /// reaches exactly one terminal state. Admission may evict already-queued
  /// lower-class requests under the rejecter policy; those tickets turn
  /// terminal kRejected as well.
  SubmitOutcome submit(SolveRequest request);

  /// DEPRECATED: use submit() with SolveRequest::required_gains. Admits or
  /// rejects the batch as one unit and returns one ticket per item, in
  /// required_gains order. An empty batch returns no tickets.
  std::vector<std::uint64_t> submit_batch(BatchSolveRequest request);

  /// Requests cancellation. A queued request becomes terminal immediately;
  /// a running one is signalled through its CancelToken and terminates
  /// within one wave boundary. Returns false when the ticket is unknown or
  /// already terminal.
  bool cancel(std::uint64_t ticket);

  /// Blocks until the request is terminal and returns its response.
  /// Unknown tickets fail immediately with a kFailed response.
  SolveResponse wait(std::uint64_t ticket);

  /// Non-blocking snapshot; nullopt for unknown tickets.
  std::optional<SolveResponse> poll(std::uint64_t ticket) const;

  /// Unparks the workers of a start_paused service.
  void resume();

  /// Stops admission and blocks until every admitted request reached its
  /// natural terminal state (queued ones still run; cancel them first for a
  /// fast abort). Afterwards the pool rejects all further submits.
  void drain();

  /// drain() + worker join. Idempotent; the destructor calls it.
  void shutdown();

  ServiceStats stats() const;
  /// The scheduler's own counters (picks, backfills, evictions, ...).
  PolicyStats scheduler_stats() const;
  /// Active policy name ("fifo", "priority", "edf", "rejecter").
  const char* policy_name() const;

  /// Outdates every cached selection (served lazily as `cache_stale`).
  /// Call when anything outside the per-request options that could affect
  /// answers changes underneath the service. No-op when the cache is off.
  void invalidate_cache();

  /// Serialized snapshot of the solution cache (partita-cache-snapshot-v1);
  /// "" when the cache is disabled or empty. The serve daemon persists this
  /// next to the journal on graceful drain.
  std::string export_cache_snapshot() const;
  /// Re-populates the cache from an export_cache_snapshot document.
  /// Generation-checked inside the cache: entries invalidated before the
  /// snapshot never resurface. Returns the number of entries imported
  /// (0 when the cache is off or the snapshot is malformed).
  std::size_t import_cache_snapshot(const std::string& data);

 private:
  struct Entry {
    SolveRequest request;  // released (workload freed) at terminal state
    SolveResponse response;
    support::CancelSource cancel;
    std::string tenant;  // survives request release for quota bookkeeping
    std::size_t memory_charge = 0;
    bool live = false;  // admitted and not yet terminal
    /// Leader ticket of the batch this entry belongs to (0: not batched).
    /// The leader's ticket doubles as the job key in jobs_ and the
    /// scheduler's pending set.
    std::uint64_t batch_leader = 0;
    /// Journal coordinates (0 seq: not journaled). finalize_locked appends
    /// the matching terminal record and drops the request's checkpoint.
    std::uint64_t journal_seq = 0;
    std::size_t journal_item = 0;
  };

  /// One admitted batch, keyed in jobs_ by its leader (first) ticket, which
  /// is also the ticket sitting in the scheduler's pending set for it.
  struct BatchJob {
    workloads::Workload workload;
    select::SelectOptions options;
    std::vector<std::int64_t> gains;
    std::vector<std::uint64_t> tickets;
  };

  void worker_main();
  /// Runs one dequeued batch job: marks live members running, solves them
  /// through Selector::select_batch outside the lock, then finalizes each
  /// member. `lk` is held on entry and on return.
  void run_batch(std::unique_lock<std::mutex>& lk, BatchJob job);
  /// Runs the attempt/retry loop for one request into `out` (a worker-local
  /// response merged back under the lock -- the shared Entry::response is
  /// never written without mu_, so poll() snapshots race-free). Returns the
  /// terminal state. Never throws.
  RequestState run_request(const SolveRequest& request,
                           const support::CancelSource& cancel,
                           SolveResponse& out);
  /// `cache_marker` receives the SolveResponse::cache outcome of this
  /// attempt ("", "bypass", "hit", "neighbor", "miss").
  support::Result<select::Selection> run_attempt(const SolveRequest& request,
                                                 const support::CancelSource& cancel,
                                                 int attempt,
                                                 std::string& cache_marker);
  /// Marks the entry terminal, releases its admission charge, tenant slot
  /// and workload, feeds the drain-rate estimator, and wakes waiters.
  /// Caller holds mu_.
  void finalize_locked(Entry& entry, RequestState state);
  /// Finalizes an admitted-but-still-queued ticket (or batch leader and all
  /// its live members) as kRejected -- the rejecter policy's eviction path.
  /// The policy has already dropped the ticket from its pending set.
  void shed_queued_locked(std::uint64_t ticket, const std::string& why);
  /// Current drain-rate-derived retry-after hint. Caller holds mu_.
  double retry_after_hint_locked() const;
  /// Checkpoint file for one journaled single request (batches solve as one
  /// amortized unit and are replayed whole instead of checkpointed).
  std::string checkpoint_path(std::uint64_t journal_seq) const;

  ServiceConfig cfg_;
  support::Clock& clock_;
  /// Cross-request solution cache; null when cache_enabled is false. The
  /// cache is internally synchronized -- run_attempt uses it outside mu_.
  std::unique_ptr<SolutionCache> cache_;
  /// Seeded-solve cold fallbacks (atomic: bumped outside mu_).
  std::atomic<std::uint64_t> cache_seed_fallbacks_{0};

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers: pending work / pause / stop
  std::condition_variable done_cv_;  // waiters: entry became terminal
  std::map<std::uint64_t, Entry> entries_;
  std::map<std::uint64_t, BatchJob> jobs_;  // queued batches by leader ticket
  std::unique_ptr<SchedulerPolicy> policy_;
  DrainRateEstimator drain_rate_;
  std::map<std::string, std::size_t> live_per_tenant_;
  std::uint64_t next_ticket_ = 0;
  std::size_t admitted_memory_ = 0;  // charge of queued + running requests
  std::size_t running_count_ = 0;    // picked and not yet terminal
  std::size_t live_count_ = 0;       // non-terminal entries
  bool paused_ = false;
  bool draining_ = false;
  bool stopping_ = false;
  ServiceStats stats_;

  std::vector<std::thread> workers_;
};

}  // namespace partita::service

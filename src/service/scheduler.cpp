#include "service/scheduler.hpp"

#include <algorithm>
#include <limits>

namespace partita::service {

const char* to_string(RequestState s) {
  switch (s) {
    case RequestState::kQueued: return "queued";
    case RequestState::kRunning: return "running";
    case RequestState::kCompleted: return "completed";
    case RequestState::kCancelled: return "cancelled";
    case RequestState::kRejected: return "rejected";
    case RequestState::kFailed: return "failed";
  }
  return "?";
}

const char* priority_name(int priority_class) {
  switch (clamp_priority(priority_class)) {
    case kPriorityInteractive: return "interactive";
    case kPriorityStandard: return "standard";
    default: return "batch";
  }
}

int clamp_priority(int priority_class) {
  return std::clamp(priority_class, 0, kPriorityClasses - 1);
}

int parse_priority(const std::string& text) {
  if (text == "interactive" || text == "0") return kPriorityInteractive;
  if (text == "standard" || text == "1") return kPriorityStandard;
  if (text == "batch" || text == "2") return kPriorityBatch;
  return -1;
}

void DrainRateEstimator::record_terminal(std::int64_t now_micros) {
  if (last_terminal_micros_ >= 0 && now_micros >= last_terminal_micros_) {
    const double gap =
        static_cast<double>(now_micros - last_terminal_micros_) / 1e6;
    // EWMA, alpha 0.3: responsive to a regime change within a few events,
    // stable against one outlier.
    interval_seconds_ = 0.7 * interval_seconds_ + 0.3 * gap;
  }
  last_terminal_micros_ = now_micros;
}

double DrainRateEstimator::retry_after_seconds(std::size_t queued_depth,
                                               int workers) const {
  const double per_slot = std::max(interval_seconds_, 1e-4);
  const double backlog_rounds =
      1.0 + static_cast<double>(queued_depth) / static_cast<double>(std::max(1, workers));
  return std::min(per_slot * backlog_rounds, 300.0);
}

namespace {

constexpr std::int64_t kNoDeadline = std::numeric_limits<std::int64_t>::max();

/// Shared pending-set plumbing. Policies differ only in their admission
/// twist and their pick order.
class BaseQueuePolicy : public SchedulerPolicy {
 public:
  explicit BaseQueuePolicy(const SchedulerLimits& limits) : limits_(limits) {}

  AdmitDecision admit(const SchedEntry& entry, const SchedulerLoad& load) override {
    AdmitDecision d;
    if (const char* reason = default_shed_reason(entry, load)) {
      d.admitted = false;
      d.reject_reason = reason;
      ++stats_.rejected;
      return d;
    }
    accept(entry);
    return d;
  }

  void on_complete(std::uint64_t ticket, RequestState, std::int64_t) override {
    pending_.erase(ticket);
  }

  std::size_t queued() const override { return pending_.size(); }

  PolicyStats stats() const override {
    PolicyStats s = stats_;
    s.name = name();
    s.queued = pending_.size();
    return s;
  }

 protected:
  /// The PR 4 shed conditions; every built-in policy starts from these.
  /// Null = admissible. The messages are load-bearing: clients and tests
  /// match on "queue full" and "memory".
  const char* default_shed_reason(const SchedEntry& entry,
                                  const SchedulerLoad& load) const {
    if (pending_.size() >= limits_.max_queue_depth) return "admission queue full";
    if (limits_.max_admitted_memory_bytes != 0 &&
        load.admitted_memory_bytes + entry.memory_charge >
            limits_.max_admitted_memory_bytes) {
      return "aggregate solver-memory budget exhausted";
    }
    return nullptr;
  }

  void accept(const SchedEntry& entry) {
    pending_.emplace(entry.ticket, entry);
    ++stats_.admitted;
  }

  /// Removes and returns `ticket`, recording whether the pick jumped an
  /// older (lower-seq) pending request.
  std::uint64_t take(std::uint64_t ticket) {
    const auto it = pending_.find(ticket);
    const std::uint64_t seq = it->second.seq;
    for (const auto& [t, e] : pending_) {
      if (t != ticket && e.seq < seq) {
        ++stats_.backfills;
        break;
      }
    }
    pending_.erase(it);
    ++stats_.picked;
    return ticket;
  }

  SchedulerLimits limits_;
  /// ticket -> entry. Tickets are handed out monotonically, so map order is
  /// admission order and begin() is the FIFO head.
  std::map<std::uint64_t, SchedEntry> pending_;
  PolicyStats stats_;
};

// --- fifo ------------------------------------------------------------------

class FifoPolicy final : public BaseQueuePolicy {
 public:
  using BaseQueuePolicy::BaseQueuePolicy;
  const char* name() const override { return "fifo"; }

  std::optional<std::uint64_t> pick_next(std::int64_t) override {
    if (pending_.empty()) return std::nullopt;
    return take(pending_.begin()->first);
  }
};

// --- priority + backfill ----------------------------------------------------

// Strict priority classes, backfill by declared solver budget inside a
// class, and two anti-starvation valves: queued aging promotes a request one
// class per age_promote_seconds, and a request older than max_wait_seconds
// outranks everything (FIFO among the starved).
class PriorityBackfillPolicy final : public BaseQueuePolicy {
 public:
  using BaseQueuePolicy::BaseQueuePolicy;
  const char* name() const override { return "priority"; }

  std::optional<std::uint64_t> pick_next(std::int64_t now_micros) override {
    if (pending_.empty()) return std::nullopt;
    const std::int64_t promote_micros =
        static_cast<std::int64_t>(limits_.age_promote_seconds * 1e6);
    const std::int64_t starve_micros =
        static_cast<std::int64_t>(limits_.max_wait_seconds * 1e6);

    const SchedEntry* best = nullptr;
    Key best_key{};
    bool best_aged = false;
    for (const auto& [t, e] : pending_) {
      const std::int64_t wait = std::max<std::int64_t>(0, now_micros - e.submit_micros);
      int eff = e.priority;
      if (promote_micros > 0) {
        eff = static_cast<int>(std::max<std::int64_t>(0, eff - wait / promote_micros));
      }
      Key key;
      key.starved = starve_micros > 0 && wait >= starve_micros;
      key.klass = key.starved ? -1 : eff;
      // Backfill: a small declared budget runs ahead of a big (or
      // undeclared) one in the same class. Undeclared sorts last.
      key.declared = key.starved ? 0.0
                     : e.declared_time_seconds > 0
                         ? e.declared_time_seconds
                         : std::numeric_limits<double>::infinity();
      key.seq = e.seq;
      if (best == nullptr || key < best_key) {
        best = &e;
        best_key = key;
        best_aged = eff < e.priority;
      }
    }
    if (best_aged || best_key.starved) ++stats_.aged_promotions;
    return take(best->ticket);
  }

 private:
  struct Key {
    bool starved = false;
    int klass = 0;
    double declared = 0.0;
    std::uint64_t seq = 0;
    bool operator<(const Key& o) const {
      if (klass != o.klass) return klass < o.klass;  // starved = class -1
      if (declared != o.declared) return declared < o.declared;
      return seq < o.seq;
    }
  };
};

// --- earliest-deadline-first -------------------------------------------------

class DeadlineEdfPolicy final : public BaseQueuePolicy {
 public:
  using BaseQueuePolicy::BaseQueuePolicy;
  const char* name() const override { return "edf"; }

  std::optional<std::uint64_t> pick_next(std::int64_t) override {
    if (pending_.empty()) return std::nullopt;
    const SchedEntry* best = nullptr;
    for (const auto& [t, e] : pending_) {
      if (best == nullptr || key(e) < key(*best)) best = &e;
    }
    return take(best->ticket);
  }

 private:
  static std::pair<std::int64_t, std::uint64_t> key(const SchedEntry& e) {
    // Declared deadlines first (earliest wins); deadline-less requests run
    // FIFO behind every deadline-carrying one.
    return {e.deadline_micros >= 0 ? e.deadline_micros : kNoDeadline, e.seq};
  }
};

// --- load-shedding rejecter --------------------------------------------------

// FIFO pick order, but admission sheds the *lowest class first*: when the
// queue (or the memory budget) is full, the youngest pending request of the
// worst class strictly below the arrival's class is evicted -- terminal
// kRejected with a retry hint -- to make room. An arrival that is itself the
// lowest class present is the one rejected, exactly like FIFO.
class RejecterPolicy final : public BaseQueuePolicy {
 public:
  using BaseQueuePolicy::BaseQueuePolicy;
  const char* name() const override { return "rejecter"; }

  AdmitDecision admit(const SchedEntry& entry, const SchedulerLoad& load) override {
    AdmitDecision d;
    std::size_t freed_memory = 0;
    const auto over_memory = [&] {
      return limits_.max_admitted_memory_bytes != 0 &&
             load.admitted_memory_bytes - freed_memory + entry.memory_charge >
                 limits_.max_admitted_memory_bytes;
    };
    while (pending_.size() >= limits_.max_queue_depth || over_memory()) {
      const SchedEntry* victim = pick_victim(entry.priority);
      if (victim == nullptr) {
        d.admitted = false;
        d.reject_reason = pending_.size() >= limits_.max_queue_depth
                              ? "admission queue full (rejecter: arrival is lowest class)"
                              : "aggregate solver-memory budget exhausted "
                                "(rejecter: arrival is lowest class)";
        ++stats_.rejected;
        return d;
      }
      freed_memory += victim->memory_charge;
      d.evicted.push_back(victim->ticket);
      pending_.erase(victim->ticket);
      ++stats_.evicted;
    }
    accept(entry);
    return d;
  }

 private:
  /// Youngest pending entry of the worst class strictly below `arrival`;
  /// null when every pending request is at least as good as the arrival.
  const SchedEntry* pick_victim(int arrival_priority) const {
    const SchedEntry* victim = nullptr;
    for (const auto& [t, e] : pending_) {
      if (e.priority <= arrival_priority) continue;
      if (victim == nullptr || e.priority > victim->priority ||
          (e.priority == victim->priority && e.seq > victim->seq)) {
        victim = &e;
      }
    }
    return victim;
  }

 public:
  std::optional<std::uint64_t> pick_next(std::int64_t) override {
    if (pending_.empty()) return std::nullopt;
    return take(pending_.begin()->first);
  }
};

}  // namespace

std::unique_ptr<SchedulerPolicy> SchedulerPolicy::create(const std::string& name,
                                                         const SchedulerLimits& limits) {
  if (name.empty() || name == "fifo") return std::make_unique<FifoPolicy>(limits);
  if (name == "priority" || name == "priority_backfill") {
    return std::make_unique<PriorityBackfillPolicy>(limits);
  }
  if (name == "edf" || name == "deadline") {
    return std::make_unique<DeadlineEdfPolicy>(limits);
  }
  if (name == "rejecter") return std::make_unique<RejecterPolicy>(limits);
  return nullptr;
}

std::vector<std::string> SchedulerPolicy::known_policies() {
  return {"fifo", "priority", "edf", "rejecter"};
}

}  // namespace partita::service

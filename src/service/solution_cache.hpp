// Bounded, sharded, read-through cache of completed Selections plus the
// solver artifacts needed to warm-start *near* misses.
//
// Key structure. An exact key is (tenant, structure fingerprint, options
// digest, literal requested gains). The structure fingerprint is
// ilp::fingerprint_model over the TOKEN-GAIN model (every gain row built
// with RHS 1), so it captures the full constraint system of the instance
// while factoring the requested gains out, mixed with the selector's
// answer-map digest (the column -> (s-call, IP, interface) decode map --
// two specs can build bit-identical models yet index the same physical IPs
// differently, and a served Selection names library slots); the gains ride
// in the key literally. Two requests share an entry iff a cold solve of
// both is guaranteed to produce the same answer:
//   * same tenant (namespacing: tenants never see each other's answers),
//   * same model structure under the same column order (the canonical
//     optimum depends on variable order -- see ilp/fingerprint.hpp) and
//     the same decode map (select::Selector::answer_map_digest),
//   * same answer-affecting solver options,
//   * same literal gain request. A derived gain (-1) is itself a pure
//     function of (structure, options), so "-1" is a consistent literal.
//
// Neighbor seeding. Entries with equal (tenant, structure, options) but
// different gains form a GROUP (sharded together). nearest() returns a copy
// of the closest group member's solver artifacts (clique table, root basis,
// pseudo-cost tables, incumbent -- an ilp::BatchContext with
// carry_search_state set) by L1 distance over resolved gains; the caller
// seeds its solve with them. Groups also memoize the derived required gain
// (max_feasible_gain/2), saving near-misses a whole auxiliary ILP solve.
//
// Consistency contract. The cache itself only ever stores what the caller
// inserts; the SolveService only inserts completed (proven-optimal or
// proven-infeasible), non-cancelled selections, and falls back to a cold
// solve whenever a seeded search truncates. Under that discipline every
// answer served from or through this cache is bit-identical to a cold
// solve -- enforced end-to-end by `partita_fuzz --mode cache` and the
// cache soak storm.
//
// Eviction: per-shard LRU, bounded by both entry count and an approximate
// byte budget (each divided evenly across shards). invalidate_all() bumps a
// generation; stale entries are dropped lazily at lookup (counted `stale`)
// rather than eagerly swept.
//
// Counter invariants (asserted by cache_test): hits + misses == lookups
// (a stale drop counts as a miss AND a stale), neighbor_hits <= misses,
// evictions and insertions are monotone.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "ilp/branch_bound.hpp"
#include "ilp/fingerprint.hpp"
#include "select/selection.hpp"

namespace partita::service {

struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  /// Misses that found a same-group neighbor to seed from.
  std::uint64_t neighbor_hits = 0;
  /// Derived-gain memo hits (a near-miss skipped its max_feasible_gain solve).
  std::uint64_t gain_memo_hits = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  /// Entries dropped at lookup because invalidate_all() outdated them.
  std::uint64_t stale = 0;
  std::uint64_t invalidations = 0;
  // Gauges.
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;
};

/// Artifacts returned by nearest() for seeding a near-miss solve.
struct CacheSeed {
  bool valid = false;
  /// Copy of the neighbor's solver artifacts; carry_search_state is set so
  /// a solve through Selector::select_seeded imports them.
  ilp::BatchContext artifacts;
  /// L1 distance between the request's and the neighbor's resolved gains.
  std::int64_t distance = 0;
};

class SolutionCache {
 public:
  struct Config {
    /// Max entries across all shards (0 behaves as 1).
    std::size_t capacity = 256;
    /// Approximate byte budget across all shards; 0 disables the byte bound.
    std::size_t max_bytes = std::size_t{64} << 20;
    int shards = 4;
  };

  struct Key {
    std::string tenant;
    ilp::Fingerprint structure;
    std::uint64_t options_digest = 0;
    /// Literal requested gains (the request's own numbers; -1 = derived).
    std::vector<std::int64_t> gains;

    /// Group identity: everything but the gains.
    std::string group() const;
    /// Full exact-key identity.
    std::string str() const;
  };

  explicit SolutionCache(Config cfg);

  /// Exact read-through probe. A hit refreshes LRU recency.
  std::optional<select::Selection> lookup(const Key& key);

  /// Nearest same-group neighbor by resolved-gain L1 distance; call after a
  /// miss. Does not touch LRU recency (a seed read is not an answer serve).
  CacheSeed nearest(const Key& key, const std::vector<std::int64_t>& resolved_gains);

  /// Group-level derived-gain memo (max_feasible_gain/2 for this structure
  /// + options); set by any insert that resolved a derived gain.
  std::optional<std::int64_t> derived_gain(const Key& key);

  /// Inserts (or refreshes) a completed selection. `artifacts` are the
  /// solver's exported BatchContext; `resolved_gains` are the actual gain
  /// values solved (== key.gains unless the request asked for a derived
  /// gain); `derived` records the scalar memo when the gain was derived.
  void insert(const Key& key, const select::Selection& sel,
              ilp::BatchContext artifacts,
              const std::vector<std::int64_t>& resolved_gains,
              std::optional<std::int64_t> derived = std::nullopt);

  /// Outdates every current entry (lazily dropped as `stale` at lookup).
  /// The service calls this when solver defaults change underneath it.
  void invalidate_all();

  /// Serializes every current-generation entry plus the derived-gain memos
  /// to a partita-cache-snapshot-v1 JSON document ("" when there is nothing
  /// to save). Solver artifacts (BatchContext) are deliberately NOT
  /// persisted -- they only accelerate, never decide, so dropping them
  /// keeps snapshots small and trivially answer-safe; reloaded entries
  /// serve exact hits and re-earn their seeding artifacts on first re-use.
  /// Entries outdated by invalidate_all() are filtered at export, so stale
  /// answers never survive a restart.
  std::string export_snapshot() const;

  /// Re-populates the cache from an export_snapshot document. Imported
  /// entries join the current generation and the normal LRU/byte bounds
  /// (eviction applies immediately). Returns entries imported; 0 on a
  /// malformed document. Malformed individual entries are skipped.
  std::size_t import_snapshot(const std::string& data);

  CacheStats stats() const;

 private:
  struct Entry {
    std::string key;
    std::string group;
    std::vector<std::int64_t> resolved_gains;
    select::Selection selection;
    ilp::BatchContext artifacts;
    std::uint64_t generation = 0;
    std::size_t bytes = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::map<std::string, std::list<Entry>::iterator> index;
    /// Derived-gain memo per group string.
    std::map<std::string, std::int64_t> gain_memo;
    CacheStats stats;
    std::size_t bytes = 0;
  };

  Shard& shard_for(const Key& key);
  Shard& shard_for_group(const std::string& group);
  void evict_locked(Shard& s);
  static std::size_t entry_bytes(const Entry& e);

  Config cfg_;
  std::size_t per_shard_capacity_;
  std::size_t per_shard_bytes_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace partita::service

#include "service/solve_service.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "ilp/checkpoint.hpp"
#include "oracle/fixture.hpp"
#include "service/journal.hpp"
#include "support/assert.hpp"
#include "support/fault_injection.hpp"
#include "support/io.hpp"

namespace partita::service {

SolveService::SolveService(ServiceConfig config)
    : cfg_(std::move(config)),
      clock_(cfg_.clock ? *cfg_.clock : support::Clock::system()),
      drain_rate_(cfg_.retry_after_seconds) {
  PARTITA_ASSERT_MSG(cfg_.workers >= 1, "SolveService needs at least one worker");
  SchedulerLimits limits;
  limits.max_queue_depth = cfg_.max_queue_depth;
  limits.max_admitted_memory_bytes = cfg_.max_admitted_memory_bytes;
  limits.workers = cfg_.workers;
  limits.age_promote_seconds = cfg_.age_promote_seconds;
  limits.max_wait_seconds = cfg_.max_wait_seconds;
  policy_ = SchedulerPolicy::create(cfg_.policy, limits);
  if (!policy_) policy_ = SchedulerPolicy::create("fifo", limits);
  if (cfg_.cache_enabled) {
    SolutionCache::Config cc;
    cc.capacity = cfg_.cache_capacity;
    cc.max_bytes = cfg_.cache_max_bytes;
    cc.shards = cfg_.cache_shards;
    cache_ = std::make_unique<SolutionCache>(cc);
  }
  if (!cfg_.checkpoint_dir.empty()) support::io::make_dirs(cfg_.checkpoint_dir);
  paused_ = cfg_.start_paused;
  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int i = 0; i < cfg_.workers; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

SolveService::~SolveService() { shutdown(); }

double SolveService::retry_after_hint_locked() const {
  return drain_rate_.retry_after_seconds(policy_->queued(), cfg_.workers);
}

SubmitOutcome SolveService::submit(SolveRequest request) {
  std::lock_guard<std::mutex> g(mu_);
  SubmitOutcome out;

  const bool batch = !request.required_gains.empty();
  const std::size_t n = batch ? request.required_gains.size() : 1;
  const std::string base =
      request.label.empty() ? request.workload.name : request.label;
  request.tenant = request.tenant.empty() ? "" : request.tenant;
  request.priority = clamp_priority(request.priority);

  out.tickets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t ticket = ++next_ticket_;
    Entry& e = entries_[ticket];
    e.response.ticket = ticket;
    e.response.label = batch ? base + "#" + std::to_string(i) : base;
    e.response.recovered = request.recovered;
    e.tenant = request.tenant;
    out.tickets.push_back(ticket);
  }
  stats_.submitted += n;
  if (request.recovered) ++stats_.recovered_requests;

  // Admission. The memory charge is what the request *declared* it may
  // consume (its solver arena cap), or a conservative default: shedding
  // happens before the work starts, so an oversized instance is rejected
  // with a hint instead of starving every other request in the pool. The
  // queue-depth / memory / class decisions belong to the scheduler policy;
  // the service itself only vetoes drain and tenant quota.
  const std::size_t charge = request.options.ilp.budget.memory_limit_bytes != 0
                                 ? request.options.ilp.budget.memory_limit_bytes
                                 : cfg_.default_memory_charge;
  const std::int64_t now = clock_.now_micros();
  std::string reject;
  std::vector<std::uint64_t> evicted;
  if (draining_ || stopping_) {
    reject = "service is draining; request not admitted";
  } else if (cfg_.max_live_per_tenant != 0 &&
             live_per_tenant_[request.tenant] + n > cfg_.max_live_per_tenant) {
    reject = "tenant quota exceeded (" + std::to_string(cfg_.max_live_per_tenant) +
             " live requests for tenant '" + request.tenant + "')";
  } else {
    SchedEntry se;
    se.ticket = out.tickets.front();
    se.seq = se.ticket;  // tickets are handed out in admission order
    se.tenant = request.tenant;
    se.priority = request.priority;
    se.submit_micros = now;
    se.deadline_micros =
        request.deadline_seconds > 0
            ? now + static_cast<std::int64_t>(request.deadline_seconds * 1e6)
            : -1;
    se.memory_charge = charge;
    se.declared_time_seconds = request.options.ilp.budget.time_limit_seconds;
    se.items = n;
    SchedulerLoad load;
    load.running = running_count_;
    load.admitted_memory_bytes = admitted_memory_;
    AdmitDecision d = policy_->admit(se, load);
    if (!d.admitted) {
      reject = std::move(d.reject_reason);
    } else {
      evicted = std::move(d.evicted);
    }
  }

  if (!reject.empty()) {
    // Retry-after derives from the observed drain rate: a fast-draining
    // pool invites a quick retry, a slow one proportionally later.
    const double hint = retry_after_hint_locked();
    for (const std::uint64_t t : out.tickets) {
      Entry& e = entries_.at(t);
      e.response.retry_after_seconds = hint;
      e.response.error = support::Error::transient(reject);
      finalize_locked(e, RequestState::kRejected);
    }
    out.state = RequestState::kRejected;
    out.retry_after_seconds = hint;
    out.reject_reason = std::move(reject);
    return out;
  }

  // Rejecter-policy evictions: queued lower-class tickets shed to make room
  // for this arrival become terminal kRejected right now.
  for (const std::uint64_t victim : evicted) {
    shed_queued_locked(victim,
                       "evicted by a higher-priority arrival (rejecter policy)");
  }

  // Durability: append-before-acknowledge. The admit record must be on
  // stable storage before any ticket escapes this call; a failed append
  // (full disk, injected fault, crash) rejects the request instead -- the
  // caller never received an acknowledgment, so nothing acknowledged is
  // ever lost. Boot-recovery replays arrive with their original seq (their
  // admit record survived compaction) and must not be appended again.
  std::uint64_t jseq = request.journal_seq;
  if (cfg_.journal != nullptr && jseq == 0 && !request.journal_payload.empty()) {
    jseq = cfg_.journal->append_admit(request.journal_payload, n);
    if (jseq == 0) {
      ++stats_.journal_rejects;
      const double hint = retry_after_hint_locked();
      for (const std::uint64_t t : out.tickets) {
        Entry& e = entries_.at(t);
        e.response.retry_after_seconds = hint;
        e.response.error = support::Error::transient(
            "journal append failed; request was not acknowledged");
        finalize_locked(e, RequestState::kRejected);
      }
      // The policy already admitted the ticket; retract it.
      policy_->on_complete(out.tickets.front(), RequestState::kRejected,
                           clock_.now_micros());
      out.state = RequestState::kRejected;
      out.retry_after_seconds = hint;
      out.reject_reason = "journal append failed; request was not acknowledged";
      return out;
    }
  }

  const std::uint64_t leader = out.tickets.front();
  for (std::size_t i = 0; i < out.tickets.size(); ++i) {
    const std::uint64_t t = out.tickets[i];
    Entry& e = entries_.at(t);
    e.live = true;
    e.response.state = RequestState::kQueued;
    // The leader owns the admission charge (batch members carry none); an
    // individually-cancelled leader releases it early, which only makes
    // admission more permissive, never blocks it.
    e.memory_charge = t == leader ? charge : 0;
    e.batch_leader = batch ? leader : 0;
    e.journal_seq = jseq;
    e.journal_item = i;
    ++live_per_tenant_[e.tenant];
  }
  admitted_memory_ += charge;
  live_count_ += n;
  if (batch) {
    BatchJob job;
    job.workload = std::move(request.workload);
    job.options = std::move(request.options);
    job.gains = std::move(request.required_gains);
    job.tickets = out.tickets;
    jobs_.emplace(leader, std::move(job));
    ++stats_.batches;
    stats_.batch_items += n;
  } else {
    request.journal_seq = jseq;  // keys this request's checkpoint file
    entries_.at(leader).request = std::move(request);
  }
  stats_.peak_queue_depth = std::max(stats_.peak_queue_depth, policy_->queued());
  stats_.peak_admitted_memory_bytes =
      std::max(stats_.peak_admitted_memory_bytes, admitted_memory_);
  work_cv_.notify_one();
  return out;
}

std::vector<std::uint64_t> SolveService::submit_batch(BatchSolveRequest request) {
  if (request.required_gains.empty()) return {};
  SolveRequest req;
  req.label = std::move(request.label);
  req.workload = std::move(request.workload);
  req.required_gains = std::move(request.required_gains);
  req.options = std::move(request.options);
  return submit(std::move(req)).tickets;
}

void SolveService::shed_queued_locked(std::uint64_t ticket, const std::string& why) {
  const double hint = retry_after_hint_locked();
  const auto shed_one = [&](Entry& e) {
    if (is_terminal(e.response.state)) return;
    e.response.retry_after_seconds = hint;
    e.response.error = support::Error::transient(why);
    ++stats_.evicted;
    finalize_locked(e, RequestState::kRejected);
  };
  const auto jit = jobs_.find(ticket);
  if (jit != jobs_.end()) {
    for (const std::uint64_t t : jit->second.tickets) shed_one(entries_.at(t));
    jobs_.erase(jit);
    return;
  }
  shed_one(entries_.at(ticket));
}

bool SolveService::cancel(std::uint64_t ticket) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = entries_.find(ticket);
  if (it == entries_.end()) return false;
  Entry& e = it->second;
  if (is_terminal(e.response.state)) return false;
  if (e.response.state == RequestState::kQueued) {
    e.response.error = support::Error::cancelled("cancelled while queued");
    finalize_locked(e, RequestState::kCancelled);
    if (e.batch_leader == 0) {
      // Single request: drop it from the scheduler's pending set.
      policy_->on_complete(ticket, RequestState::kCancelled, clock_.now_micros());
      return true;
    }
    // Batch member: the scheduler holds the leader ticket as the job key,
    // which must survive until every member is terminal (the worker skips
    // already-cancelled members). Drop the job once the last one goes.
    const auto jit = jobs_.find(e.batch_leader);
    if (jit != jobs_.end()) {
      bool any_live = false;
      for (const std::uint64_t t : jit->second.tickets) {
        if (!is_terminal(entries_.at(t).response.state)) {
          any_live = true;
          break;
        }
      }
      if (!any_live) {
        jobs_.erase(jit);
        policy_->on_complete(e.batch_leader, RequestState::kCancelled,
                             clock_.now_micros());
      }
    }
    return true;
  }
  // Running: signal the token; the worker observes it at the next wave
  // boundary and finalizes the terminal state itself.
  e.cancel.cancel();
  return true;
}

SolveResponse SolveService::wait(std::uint64_t ticket) {
  std::unique_lock<std::mutex> lk(mu_);
  auto it = entries_.find(ticket);
  if (it == entries_.end()) {
    SolveResponse r;
    r.ticket = ticket;
    r.state = RequestState::kFailed;
    r.error = support::Error{"unknown ticket", {}};
    return r;
  }
  done_cv_.wait(lk, [&] { return is_terminal(it->second.response.state); });
  return it->second.response;
}

std::optional<SolveResponse> SolveService::poll(std::uint64_t ticket) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = entries_.find(ticket);
  if (it == entries_.end()) return std::nullopt;
  return it->second.response;
}

void SolveService::resume() {
  std::lock_guard<std::mutex> g(mu_);
  paused_ = false;
  work_cv_.notify_all();
}

void SolveService::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  // Graceful: stop admission, then let the workers flush everything already
  // admitted to its natural terminal state. Callers wanting a fast abort
  // cancel their tickets first; solves are bounded by their own budgets, so
  // the flush terminates.
  draining_ = true;
  paused_ = false;  // parked queues must flush, not hang
  work_cv_.notify_all();
  done_cv_.wait(lk, [&] { return live_count_ == 0; });
  // Quiesced: every admit is paired with a terminal record, so compaction
  // collapses the journal to one empty segment for the next boot.
  if (cfg_.journal != nullptr && cfg_.journal->is_open()) cfg_.journal->compact();
}

void SolveService::shutdown() {
  drain();
  {
    std::lock_guard<std::mutex> g(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

ServiceStats SolveService::stats() const {
  std::lock_guard<std::mutex> g(mu_);
  ServiceStats s = stats_;
  if (cache_ != nullptr) {
    const CacheStats cs = cache_->stats();
    s.cache_lookups = cs.lookups;
    s.cache_hits = cs.hits;
    s.cache_misses = cs.misses;
    s.cache_neighbor_seeds = cs.neighbor_hits;
    s.cache_insertions = cs.insertions;
    s.cache_evictions = cs.evictions;
    s.cache_stale = cs.stale;
  }
  s.cache_seed_fallbacks = cache_seed_fallbacks_.load();
  return s;
}

void SolveService::invalidate_cache() {
  if (cache_ != nullptr) cache_->invalidate_all();
}

std::string SolveService::export_cache_snapshot() const {
  return cache_ != nullptr ? cache_->export_snapshot() : std::string();
}

std::size_t SolveService::import_cache_snapshot(const std::string& data) {
  return cache_ != nullptr ? cache_->import_snapshot(data) : 0;
}

std::string SolveService::checkpoint_path(std::uint64_t journal_seq) const {
  return cfg_.checkpoint_dir + "/ckpt_" + std::to_string(journal_seq) + ".bin";
}

PolicyStats SolveService::scheduler_stats() const {
  std::lock_guard<std::mutex> g(mu_);
  return policy_->stats();
}

const char* SolveService::policy_name() const {
  std::lock_guard<std::mutex> g(mu_);
  return policy_->name();
}

void SolveService::finalize_locked(Entry& e, RequestState state) {
  e.response.state = state;
  // Durability: the terminal record pairs with the admit and lets boot
  // compaction drop this entry. Best-effort -- a lost terminal record (fault
  // site journal.trim, crash) only means the admit replays on recovery, so
  // execution is at-least-once while acknowledgment stays exactly-once.
  if (e.journal_seq != 0 && cfg_.journal != nullptr) {
    JournalTerminal t;
    t.seq = e.journal_seq;
    t.item = e.journal_item;
    t.state = to_string(state);
    t.label = e.response.label;
    if (state == RequestState::kCompleted) {
      t.signature = select::solution_signature(e.response.selection);
    }
    cfg_.journal->append_terminal(t);
    if (!cfg_.checkpoint_dir.empty() && e.batch_leader == 0) {
      support::io::remove_file(checkpoint_path(e.journal_seq));
    }
  }
  switch (state) {
    case RequestState::kCompleted: ++stats_.completed; break;
    case RequestState::kCancelled: ++stats_.cancelled; break;
    case RequestState::kRejected: ++stats_.rejected; break;
    case RequestState::kFailed: ++stats_.failed; break;
    default: PARTITA_ASSERT_MSG(false, "finalize on a non-terminal state");
  }
  stats_.retries +=
      static_cast<std::uint64_t>(std::max(0, e.response.attempts - 1));
  if (e.live) {
    e.live = false;
    admitted_memory_ -= e.memory_charge;
    --live_count_;
    const auto tit = live_per_tenant_.find(e.tenant);
    if (tit != live_per_tenant_.end() && tit->second > 0) {
      if (--tit->second == 0) live_per_tenant_.erase(tit);
    }
    // Only admitted requests feed the drain-rate estimator: their terminal
    // transition frees capacity, which is exactly what the retry-after hint
    // is estimating.
    drain_rate_.record_terminal(clock_.now_micros());
  }
  e.request = SolveRequest();  // release the workload: terminal entries keep
                               // only their (small) response
  done_cv_.notify_all();
}

void SolveService::worker_main() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [&] {
      return stopping_ || (!paused_ && policy_->queued() > 0);
    });
    if (stopping_) return;
    const std::optional<std::uint64_t> picked =
        policy_->pick_next(clock_.now_micros());
    if (!picked.has_value()) continue;
    const std::uint64_t ticket = *picked;
    ++running_count_;
    const auto jit = jobs_.find(ticket);
    if (jit != jobs_.end()) {
      BatchJob job = std::move(jit->second);
      jobs_.erase(jit);
      run_batch(lk, std::move(job));
      --running_count_;
      policy_->on_complete(ticket, RequestState::kCompleted, clock_.now_micros());
      continue;
    }
    Entry& e = entries_.at(ticket);  // std::map: reference stable across inserts
    e.response.state = RequestState::kRunning;
    SolveResponse local = e.response;  // worker-private while running
    lk.unlock();
    // Outside the lock the worker reads e.request (mutated only at
    // finalize, which only this worker can now trigger) and writes `local`;
    // the shared response stays lock-protected for poll()/wait().
    const RequestState terminal = run_request(e.request, e.cancel, local);
    lk.lock();
    e.response = std::move(local);
    finalize_locked(e, terminal);
    --running_count_;
    policy_->on_complete(ticket, terminal, clock_.now_micros());
  }
}

void SolveService::run_batch(std::unique_lock<std::mutex>& lk, BatchJob job) {
  // Members cancelled while the batch sat in the queue are already terminal;
  // everything still live runs now, each under its own cancel token.
  std::vector<std::uint64_t> active;
  std::vector<support::CancelToken> tokens;
  std::vector<std::int64_t> gains;
  for (std::size_t i = 0; i < job.tickets.size(); ++i) {
    Entry& e = entries_.at(job.tickets[i]);
    if (is_terminal(e.response.state)) continue;
    e.response.state = RequestState::kRunning;
    active.push_back(job.tickets[i]);
    tokens.push_back(e.cancel.token());
    gains.push_back(job.gains[i]);
  }
  lk.unlock();

  // Crash isolation: like run_attempt, nothing a batch does may take the
  // worker down. Batch items share one attempt -- no retry ladder; a batch
  // failure marks every remaining item failed with the same error.
  std::vector<select::Selection> sels;
  support::Error batch_error;
  bool failed = false;
  if (!active.empty()) {
    try {
      if (support::fault_should_trip("service.transient")) {
        batch_error = support::Error::transient(
            "injected transient service fault (site service.transient)");
        failed = true;
      } else {
        auto flow_or =
            select::Flow::create(job.workload.module, job.workload.library);
        if (!flow_or.ok()) {
          batch_error = flow_or.error();
          failed = true;
        } else {
          select::Flow& flow = *flow_or.value();
          select::SelectOptions opt = job.options;
          opt.ilp.budget.clock = cfg_.clock;
          std::int64_t derived = -1;
          for (std::int64_t& g : gains) {
            if (g < 0) {
              if (derived < 0) derived = flow.max_feasible_gain(opt) / 2;
              g = derived;  // derived once, amortized across the batch
            }
          }
          sels = flow.selector().select_batch(
              gains, opt, [&](std::size_t item, ilp::IlpOptions& iopt) {
                iopt.budget.cancel = tokens[item];
              });
        }
      }
    } catch (const std::exception& ex) {
      batch_error =
          support::Error::transient(std::string("escaped exception: ") + ex.what());
      failed = true;
    } catch (...) {
      batch_error = support::Error::transient("escaped non-standard exception");
      failed = true;
    }
  }

  lk.lock();
  for (std::size_t i = 0; i < active.size(); ++i) {
    Entry& e = entries_.at(active[i]);
    e.response.attempts = 1;
    if (failed) {
      e.response.error = batch_error;
      finalize_locked(e, RequestState::kFailed);
      continue;
    }
    select::Selection& sel = sels[i];
    if (tokens[i].cancelled() ||
        sel.solver.termination == ilp::TerminationReason::kCancelled) {
      e.response.error = support::Error::cancelled("request cancelled mid-batch");
      finalize_locked(e, RequestState::kCancelled);
      continue;
    }
    stats_.batch_amortized_hits += static_cast<std::uint64_t>(sel.solver.batch_hits);
    e.response.selection = std::move(sel);
    finalize_locked(e, RequestState::kCompleted);
  }
}

RequestState SolveService::run_request(const SolveRequest& request,
                                       const support::CancelSource& cancel,
                                       SolveResponse& out) {
  // Per-request jitter seed: deterministic for a ticket, de-correlated
  // across concurrent retries.
  support::RetryPolicy policy = cfg_.retry;
  policy.jitter_seed ^= out.ticket;

  int attempt = 0;
  for (;;) {
    if (cancel.cancelled()) {
      out.error = support::Error::cancelled("request cancelled");
      return RequestState::kCancelled;
    }
    ++attempt;
    out.attempts = attempt;
    support::Result<select::Selection> r =
        run_attempt(request, cancel, attempt, out.cache);
    if (r.ok()) {
      out.selection = r.take();
      return RequestState::kCompleted;
    }
    const support::Error& err = r.error();
    if (err.kind == support::ErrorKind::kCancelled) {
      out.error = err;
      return RequestState::kCancelled;
    }
    if (policy.should_retry(err, attempt)) {
      clock_.sleep_micros(policy.backoff_micros(attempt));
      continue;
    }
    out.error = err;
    // Quarantine: spec-carrying requests leave a replayable fixture behind,
    // so the exact failing instance can be re-run offline with
    // `partita_fuzz --replay <fixture>`. Since the journal landed, the file
    // is one CRC-framed partita-journal-v1 quarantine record embedding the
    // partita-oracle-fixture-v1 document -- the same framing the WAL uses,
    // and the replayer accepts both this and the legacy bare-JSON form.
    if (request.spec.has_value() && !cfg_.quarantine_dir.empty()) {
      const std::string path = cfg_.quarantine_dir + "/quarantine_" +
                               std::to_string(out.ticket) + ".json";
      const std::uint64_t seq =
          request.journal_seq != 0 ? request.journal_seq : out.ticket;
      if (Journal::write_quarantine_file(path, seq,
                                         oracle::fixture_json(*request.spec))) {
        out.quarantine_fixture = path;
      }
    }
    return RequestState::kFailed;
  }
}

support::Result<select::Selection> SolveService::run_attempt(
    const SolveRequest& req, const support::CancelSource& cancel, int attempt,
    std::string& cache_marker) {
  // Crash isolation boundary: nothing a request does -- escaped exceptions,
  // injected faults, allocation failure -- may take a worker down. Every
  // failure becomes a structured Error for the retry/terminal machinery.
  try {
    cache_marker.clear();
    if (support::fault_should_trip("service.transient")) {
      return support::Error::transient(
          "injected transient service fault (site service.transient)");
    }

    select::SelectOptions opt = req.options;
    opt.ilp.budget.cancel = cancel.token();
    opt.ilp.budget.clock = cfg_.clock;
    // Durability: journaled solves snapshot their branch & bound frontier at
    // wave boundaries, and a boot-recovery replay resumes from the last
    // snapshot instead of re-exploring the tree. The solver re-checks
    // resume_compatible against the actual model, so a snapshot taken by a
    // different solve under this seq (e.g. the auxiliary gain probe)
    // silently starts cold. Answers are bit-identical either way
    // (canonical tie-breaking; checkpoint_resume_test proves it).
    ilp::SearchCheckpoint resume_cp;
    if (cfg_.checkpoint_every_waves > 0 && !cfg_.checkpoint_dir.empty() &&
        req.journal_seq != 0) {
      const std::string ckpt = checkpoint_path(req.journal_seq);
      opt.ilp.checkpoint_every_waves = cfg_.checkpoint_every_waves;
      opt.ilp.checkpoint_sink = [ckpt](const ilp::SearchCheckpoint& cp) {
        ilp::write_checkpoint_file(ckpt, cp);
      };
      if (req.recovered && attempt == 1 &&
          ilp::load_checkpoint_file(ckpt, &resume_cp, nullptr)) {
        opt.ilp.resume = &resume_cp;
      }
    }
    // Retries run on a lower degradation rung: each extra attempt shrinks
    // the node budget 16x, steering the ladder toward gap-bounded / greedy
    // answers so a recurring transient fault still converges to a terminal
    // response instead of re-burning the full search every time.
    for (int k = 1; k < attempt; ++k) {
      opt.ilp.max_nodes = std::max(1, opt.ilp.max_nodes / 16);
    }

    auto flow_or = select::Flow::create(req.workload.module, req.workload.library);
    if (!flow_or.ok()) return flow_or.error();  // permanent: bad input
    select::Flow& flow = *flow_or.value();

    // imp_filter is an opaque callable: its effect IS materialized in the
    // model (forced-zero bounds), but the function itself may close over
    // anything, so filtered requests bypass the cache rather than trust it
    // to be pure.
    if (cache_ == nullptr || req.options.imp_filter) {
      if (cache_ != nullptr) cache_marker = "bypass";
      std::int64_t rg = req.required_gain;
      if (rg < 0) rg = flow.max_feasible_gain(opt) / 2;
      select::Selection sel = flow.select(rg, opt);
      if (cancel.cancelled() ||
          sel.solver.termination == ilp::TerminationReason::kCancelled) {
        return support::Error::cancelled("request cancelled mid-solve");
      }
      return sel;
    }

    // --- read-through solution cache ------------------------------------
    const select::Selector& selector = flow.selector();
    SolutionCache::Key key;
    key.tenant = req.tenant;
    // Structure fingerprint over the token-gain model: every select-level
    // flag that shapes the constraint system (problem2, max_power) lands in
    // the row set, so only the ilp options need a separate digest. The
    // retry-shrunk max_nodes is digested too: retry answers on a lower rung
    // never collide with first-attempt entries.
    key.structure = ilp::fingerprint_model(selector.build_model(
        std::vector<std::int64_t>(selector.path_count(), 1), opt));
    // The model digest alone is not enough: a cached Selection also reports
    // the column -> (s-call, IP, interface) decode map, which can differ
    // between specs whose models are bit-identical (duplicate-parameter IPs
    // swapped by a column permutation). Mix it in so such instances miss.
    key.structure.lo = ilp::fp_mix(key.structure.lo ^ selector.answer_map_digest());
    key.options_digest = ilp::digest_options(opt.ilp);
    key.gains = {req.required_gain};  // literal: -1 = "derived", itself a
                                      // pure function of (structure, options)
    if (std::optional<select::Selection> hit = cache_->lookup(key)) {
      cache_marker = "hit";
      return std::move(*hit);
    }
    cache_marker = "miss";

    std::int64_t rg = req.required_gain;
    bool derived = false;
    if (rg < 0) {
      derived = true;
      // Group-level memo: same structure + options => same derived gain, so
      // a near-miss skips the auxiliary max_feasible_gain ILP entirely.
      if (std::optional<std::int64_t> memo = cache_->derived_gain(key)) {
        rg = *memo;
      } else {
        rg = flow.max_feasible_gain(opt) / 2;
      }
    }
    const std::vector<std::int64_t> gains(selector.path_count(), rg);

    ilp::BatchContext ctx;
    ctx.carry_search_state = true;
    bool seeded = false;
    if (cfg_.cache_neighbor_seeding) {
      CacheSeed seed = cache_->nearest(key, gains);
      if (seed.valid) {
        ctx = std::move(seed.artifacts);
        seeded = true;
      }
    }
    select::Selection sel = selector.select_seeded(gains, opt, &ctx);
    if (seeded && sel.truncated &&
        sel.solver.termination != ilp::TerminationReason::kCancelled) {
      // Answer safety: imported artifacts are answer-neutral only for
      // COMPLETED searches -- a truncated seeded search may have explored a
      // different prefix of the tree than a cold one would. Redo cold (fresh
      // context) so the served answer is bit-identical to a cold solve.
      cache_seed_fallbacks_.fetch_add(1);
      ilp::BatchContext cold_ctx;
      cold_ctx.carry_search_state = true;
      sel = selector.select_seeded(gains, opt, &cold_ctx);
      ctx = std::move(cold_ctx);
      seeded = false;
    }
    if (cancel.cancelled() ||
        sel.solver.termination == ilp::TerminationReason::kCancelled) {
      // Ordered before the insert: a cancelled solve never populates the
      // cache, even when its search happened to complete under the wire.
      return support::Error::cancelled("request cancelled mid-solve");
    }
    if (seeded) cache_marker = "neighbor";
    if (!sel.truncated &&
        sel.solver.termination == ilp::TerminationReason::kCompleted) {
      // Only proven answers (optimal or proven-infeasible) are cacheable;
      // truncated rungs depend on the budget that struck and stay uncached.
      cache_->insert(key, sel, std::move(ctx), gains,
                     derived ? std::optional<std::int64_t>(rg) : std::nullopt);
    }
    return sel;
  } catch (const std::exception& ex) {
    return support::Error::transient(std::string("escaped exception: ") + ex.what());
  } catch (...) {
    return support::Error::transient("escaped non-standard exception");
  }
}

}  // namespace partita::service

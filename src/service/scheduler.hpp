// Pluggable admission/scheduling policies for the solve service.
//
// PR 4's SolveService hard-coded one scheduling decision: a bounded FIFO
// queue with load shedding at submit. Serving heterogeneous multi-tenant
// traffic needs that decision to be swappable -- batsched's
// ISchedulingAlgorithm catalog (easy-backfill, fcfs, rejecter, ...) is the
// shape this mirrors: one narrow interface, many small, independently
// testable policies.
//
// The contract: the service owns the request lifecycle and the lock; the
// policy owns the *pending set* (admitted, not yet running) and three
// decisions --
//
//   admit(entry, load)   may the request join the pending set? May also
//                        evict already-queued lower-class requests
//                        (rejecter) to make room.
//   pick_next(now)       which pending ticket runs next on a free worker?
//   on_complete(t, s)    a ticket reached a terminal state (or was picked
//                        and finished); still-pending tickets (queued
//                        cancel, eviction) leave the pending set here.
//
// Every method is called with the service mutex held, on the service's
// injectable clock -- policies do no locking and never read the wall clock
// themselves, so ordering/starvation invariants are testable on a FakeClock
// with zero real sleeps.
//
// Built-in policies (SchedulerPolicy::create):
//   "fifo"      arrival order; queue-depth + aggregate-memory shedding
//               (the PR 4 behavior, and the default).
//   "priority"  strict priority classes with backfill by declared solver
//               budget inside a class, age-based class promotion and an
//               absolute anti-starvation wait cap.
//   "edf"       earliest-deadline-first over requests that declared a
//               deadline; deadline-less requests run FIFO behind them.
//   "rejecter"  load-shedding rejecter: when full, sheds the *lowest*
//               class first -- evicting queued low-class work to admit a
//               higher-class arrival -- instead of rejecting blindly.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace partita::service {

/// Request lifecycle:  submitted -> (rejected) | queued -> running -> one of
/// completed / cancelled / failed. Rejected requests are terminal at submit.
enum class RequestState : std::uint8_t {
  kQueued,
  kRunning,
  kCompleted,  // terminal: a Selection (possibly degraded-rung) was produced
  kCancelled,  // terminal: caller cancelled (queued or mid-solve) or drain
  kRejected,   // terminal: admission control shed the request at submit
  kFailed,     // terminal: structured Error after exhausting retries
};

/// Display name: "queued", "running", "completed", "cancelled", "rejected",
/// "failed".
const char* to_string(RequestState s);

inline bool is_terminal(RequestState s) {
  return s == RequestState::kCompleted || s == RequestState::kCancelled ||
         s == RequestState::kRejected || s == RequestState::kFailed;
}

/// Priority classes, best first: 0 interactive, 1 standard, 2 batch.
/// Requests outside the range are clamped at submit.
inline constexpr int kPriorityClasses = 3;
inline constexpr int kPriorityInteractive = 0;
inline constexpr int kPriorityStandard = 1;
inline constexpr int kPriorityBatch = 2;

/// Display name: "interactive", "standard", "batch".
const char* priority_name(int priority_class);
/// Clamps into [0, kPriorityClasses).
int clamp_priority(int priority_class);
/// Parses a class name or numeral; -1 on unknown input.
int parse_priority(const std::string& text);

/// What a policy knows about one request at admission time. Everything is
/// *declared* data (the scheduler never inspects the workload itself):
/// tenant, class, deadline and the solver budget the request announced.
struct SchedEntry {
  std::uint64_t ticket = 0;
  std::uint64_t seq = 0;  // admission order (monotone; ties broken by this)
  std::string tenant;
  int priority = kPriorityStandard;
  std::int64_t submit_micros = 0;
  /// Absolute deadline on the service clock; -1 = none declared.
  std::int64_t deadline_micros = -1;
  /// Admission memory charge (declared solver cap or the service default).
  std::size_t memory_charge = 0;
  /// Declared solver wall-clock budget in seconds; 0 = none declared.
  /// Backfill orders by this: small declared budgets may jump ahead.
  double declared_time_seconds = 0.0;
  /// Batch size (1 for a single request) -- a batch occupies one slot.
  std::size_t items = 1;
};

/// Static policy configuration, fixed at construction.
struct SchedulerLimits {
  /// Pending (admitted, not yet running) requests beyond this are shed.
  std::size_t max_queue_depth = 16;
  /// Aggregate memory charge (pending + running) ceiling; 0 disables.
  std::size_t max_admitted_memory_bytes = 0;
  int workers = 2;
  /// Priority policy: one class promotion per this much queued waiting.
  double age_promote_seconds = 5.0;
  /// Priority policy: a request queued longer than this outranks every
  /// class (absolute anti-starvation cap).
  double max_wait_seconds = 30.0;
};

/// Live service-side load at admission time.
struct SchedulerLoad {
  std::size_t running = 0;
  /// Sum of memory charges over pending + running requests (the incoming
  /// entry's own charge is NOT yet included).
  std::size_t admitted_memory_bytes = 0;
};

struct AdmitDecision {
  bool admitted = true;
  /// One-line shed reason; set iff !admitted.
  std::string reject_reason;
  /// Already-queued tickets the policy shed to make room (rejecter). The
  /// service finalizes these as kRejected; they have left the pending set.
  std::vector<std::uint64_t> evicted;
};

struct PolicyStats {
  std::string name;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;  // shed at admission (incoming request)
  std::uint64_t evicted = 0;   // shed after admission to make room
  std::uint64_t picked = 0;
  /// Picks that jumped ahead of an older pending request (priority win,
  /// declared-budget backfill or deadline ordering).
  std::uint64_t backfills = 0;
  /// Picks where queued aging promoted the request past its declared class.
  std::uint64_t aged_promotions = 0;
  std::size_t queued = 0;  // pending-set size at stats() time
};

class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  virtual const char* name() const = 0;

  /// Admission decision for `entry`. On admit the entry joins the pending
  /// set (and `evicted` lists any queued tickets shed to make room); on
  /// reject the entry was never owned by the policy.
  virtual AdmitDecision admit(const SchedEntry& entry, const SchedulerLoad& load) = 0;

  /// Removes and returns the pending ticket that should run next, or
  /// nullopt when the pending set is empty.
  virtual std::optional<std::uint64_t> pick_next(std::int64_t now_micros) = 0;

  /// Terminal-state notification for every admitted ticket. A ticket that
  /// is still pending (cancelled while queued, evicted, drained) leaves the
  /// pending set here; tickets already handed out by pick_next are just
  /// recorded.
  virtual void on_complete(std::uint64_t ticket, RequestState state,
                           std::int64_t now_micros) = 0;

  virtual PolicyStats stats() const = 0;

  /// Pending-set size (queued, not yet running).
  virtual std::size_t queued() const = 0;

  /// Factory over the built-in catalog: "fifo", "priority", "edf",
  /// "rejecter". Unknown names return nullptr.
  static std::unique_ptr<SchedulerPolicy> create(const std::string& name,
                                                 const SchedulerLimits& limits);
  static std::vector<std::string> known_policies();
};

/// EWMA of the observed inter-terminal gap, used to derive the rejection
/// retry-after hint from the actual queue drain rate instead of a static
/// constant: a service draining every 10 ms tells shed clients to come back
/// in tens of milliseconds, a wedged one proportionally later. Timestamps
/// come from the service's injectable clock, so tests drive it with a
/// FakeClock.
class DrainRateEstimator {
 public:
  /// `seed_interval_seconds` is the estimate before any completion has been
  /// observed (the old static hint base, so cold behavior is unchanged).
  explicit DrainRateEstimator(double seed_interval_seconds)
      : interval_seconds_(seed_interval_seconds > 0 ? seed_interval_seconds : 0.05) {}

  /// Feeds one terminal event (completed/cancelled/failed -- anything that
  /// frees capacity).
  void record_terminal(std::int64_t now_micros);

  /// Current smoothed gap between terminal events, in seconds.
  double interval_seconds() const { return interval_seconds_; }

  /// Retry-after hint for a shed request: the estimated time until the
  /// backlog ahead of it has drained across the worker pool.
  double retry_after_seconds(std::size_t queued_depth, int workers) const;

 private:
  double interval_seconds_;
  std::int64_t last_terminal_micros_ = -1;
};

}  // namespace partita::service

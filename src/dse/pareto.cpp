#include "dse/pareto.hpp"

#include <sstream>

#include "support/strings.hpp"
#include "support/text_table.hpp"

namespace partita::dse {

std::vector<ParetoPoint> pareto_frontier(const select::Selector& selector,
                                         const ParetoOptions& opts) {
  std::vector<ParetoPoint> frontier;
  std::int64_t rg = std::max<std::int64_t>(opts.min_gain, 1);

  while (frontier.size() < opts.max_points) {
    select::Selection sel = selector.select(rg, opts.select);
    if (!sel.feasible) break;

    ParetoPoint point;
    point.gain = sel.min_path_gain;
    point.selection = std::move(sel);

    // The epsilon step guarantees strictly increasing gain; area may tie
    // when a cheaper-but-stronger design also covers the next level, in
    // which case the previous point is dominated and replaced.
    while (!frontier.empty() &&
           frontier.back().selection.total_area() >= point.selection.total_area() - 1e-9) {
      frontier.pop_back();
    }
    rg = point.gain + std::max<std::int64_t>(opts.gain_step, 1);
    frontier.push_back(std::move(point));
  }
  return frontier;
}

std::string render_frontier(const std::vector<ParetoPoint>& frontier,
                            const isel::ImpDatabase& db, const iplib::IpLibrary& lib) {
  support::TextTable t({"guaranteed gain", "area", "S", "O", "implementation"});
  t.set_alignment({support::Align::kRight, support::Align::kRight, support::Align::kRight,
                   support::Align::kRight, support::Align::kLeft});
  for (const ParetoPoint& p : frontier) {
    t.add_row({support::with_commas(p.gain),
               support::compact_double(p.selection.total_area()),
               std::to_string(p.selection.s_instructions),
               std::to_string(p.selection.selected_scalls), p.selection.describe(db, lib)});
  }
  return t.render();
}

}  // namespace partita::dse

// Design-space exploration: the area/gain Pareto frontier.
//
// The paper's tables sample the trade-off at hand-picked required gains; a
// designer really wants the whole frontier -- every gain level where the
// minimum area changes. We enumerate it exactly with the epsilon-constraint
// method: solve min-area at RG, read the achieved guaranteed gain G* (>= RG,
// the selection usually overshoots), emit the point (G*, area), and continue
// from RG = G* + 1 until infeasible. Each ILP solve lands exactly one
// frontier point, so the loop runs once per distinct area level.
#pragma once

#include <vector>

#include "select/selection.hpp"
#include "select/selector.hpp"

namespace partita::dse {

struct ParetoPoint {
  /// Guaranteed (min-path) gain of the design point.
  std::int64_t gain = 0;
  select::Selection selection;
};

struct ParetoOptions {
  select::SelectOptions select;
  /// Safety cap on enumerated points.
  std::size_t max_points = 256;
  /// Skip designs whose gain is below this (0 = start from the cheapest
  /// positive-gain design).
  std::int64_t min_gain = 1;
  /// Epsilon step between points: the next required gain is
  /// previous achieved gain + gain_step. 1 enumerates the exact frontier;
  /// larger values subsample it (every returned point is still the optimal
  /// design for its own gain level).
  std::int64_t gain_step = 1;
};

/// Enumerates the frontier in increasing gain / increasing area order.
/// Every returned selection is feasible, gain-sorted, and no point is
/// dominated by another (tests assert both monotonicities).
std::vector<ParetoPoint> pareto_frontier(const select::Selector& selector,
                                         const ParetoOptions& opts = {});

/// Renders the frontier as a two-column table (gain, area) plus the chosen
/// implementation summary.
std::string render_frontier(const std::vector<ParetoPoint>& frontier,
                            const isel::ImpDatabase& db, const iplib::IpLibrary& lib);

}  // namespace partita::dse

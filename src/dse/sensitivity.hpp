// Sensitivity analysis of a selection.
//
// Designers reading Table-1-style output ask two questions the optimum
// alone does not answer:
//
//  * criticality -- if this IP were unavailable (licensing, silicon bring-up
//    risk), what would the design point cost instead? Computed by re-solving
//    with the IP banned.
//  * slack -- how much further could the required gain rise before THIS
//    design stops being optimal/feasible? Computed from the frontier
//    relation select(G*) (the achieved gain is the step edge).
//
// Both reuse the exact ILP, so the numbers are true optima, not estimates.
#pragma once

#include <string>
#include <vector>

#include "select/selection.hpp"
#include "select/selector.hpp"

namespace partita::dse {

/// Criticality of one instantiated IP within a design point.
struct IpCriticality {
  iplib::IpId ip;
  /// Optimal area when the IP is banned; infeasible => the IP is essential.
  bool feasible_without = false;
  double area_without = 0.0;
  /// area_without - baseline area (0 when the IP is free to replace).
  double area_penalty = 0.0;
  select::Selection alternative;
};

struct SensitivityReport {
  /// Baseline design point.
  select::Selection baseline;
  std::int64_t required_gain = 0;
  /// One entry per IP instantiated by the baseline.
  std::vector<IpCriticality> per_ip;
  /// Gain slack: the baseline's achieved gain minus the requirement -- the
  /// requirement can rise this far with the same design.
  std::int64_t gain_slack = 0;
};

/// Runs the analysis at `required_gain`. Baseline infeasible => empty per_ip.
SensitivityReport analyze_sensitivity(const select::Selector& selector,
                                      std::int64_t required_gain,
                                      const select::SelectOptions& opt = {});

/// Text rendering.
std::string render_sensitivity(const SensitivityReport& rep, const iplib::IpLibrary& lib);

}  // namespace partita::dse

#include "dse/sensitivity.hpp"

#include <sstream>

#include "support/strings.hpp"
#include "support/text_table.hpp"

namespace partita::dse {

SensitivityReport analyze_sensitivity(const select::Selector& selector,
                                      std::int64_t required_gain,
                                      const select::SelectOptions& opt) {
  SensitivityReport rep;
  rep.required_gain = required_gain;
  rep.baseline = selector.select(required_gain, opt);
  if (!rep.baseline.feasible) return rep;
  rep.gain_slack = rep.baseline.min_path_gain - required_gain;

  for (iplib::IpId banned : rep.baseline.ips_used) {
    IpCriticality crit;
    crit.ip = banned;

    select::SelectOptions banned_opt = opt;
    const auto base_filter = opt.imp_filter;
    banned_opt.imp_filter = [banned, base_filter](const isel::Imp& imp) {
      if (imp.ip == banned) return false;
      return !base_filter || base_filter(imp);
    };
    crit.alternative = selector.select(required_gain, banned_opt);
    crit.feasible_without = crit.alternative.feasible;
    if (crit.feasible_without) {
      crit.area_without = crit.alternative.total_area();
      crit.area_penalty = crit.area_without - rep.baseline.total_area();
    }
    rep.per_ip.push_back(std::move(crit));
  }
  return rep;
}

std::string render_sensitivity(const SensitivityReport& rep,
                               const iplib::IpLibrary& lib) {
  std::ostringstream os;
  if (!rep.baseline.feasible) {
    os << "baseline infeasible at RG=" << support::with_commas(rep.required_gain) << '\n';
    return os.str();
  }
  os << "baseline: area " << support::compact_double(rep.baseline.total_area())
     << " at RG=" << support::with_commas(rep.required_gain) << " (achieved "
     << support::with_commas(rep.baseline.min_path_gain) << ", slack "
     << support::with_commas(rep.gain_slack) << ")\n\n";

  support::TextTable t({"IP (banned)", "still feasible", "area without", "area penalty"});
  t.set_alignment({support::Align::kLeft, support::Align::kLeft, support::Align::kRight,
                   support::Align::kRight});
  for (const IpCriticality& c : rep.per_ip) {
    t.add_row({lib.ip(c.ip).name, c.feasible_without ? "yes" : "NO - essential",
               c.feasible_without ? support::compact_double(c.area_without) : "-",
               c.feasible_without ? support::compact_double(c.area_penalty) : "-"});
  }
  os << t.render();
  return os.str();
}

}  // namespace partita::dse

#include "cinst/cinst.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "ilp/branch_bound.hpp"
#include "support/assert.hpp"

namespace partita::cinst {

std::string Candidate::name() const {
  std::ostringstream os;
  os << "c_";
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    if (i) os << '_';
    os << ir::to_string(pattern[i]);
  }
  return os.str();
}

namespace {

/// Straight-line runs of MOP kinds (control ops break the stream).
std::vector<std::vector<ir::MopKind>> straight_line_runs(const ir::MopList& mops) {
  std::vector<std::vector<ir::MopKind>> runs(1);
  for (const ir::Mop& m : mops.mops()) {
    if (m.is_control()) {
      if (!runs.back().empty()) runs.emplace_back();
      continue;
    }
    runs.back().push_back(m.kind);
  }
  if (runs.back().empty()) runs.pop_back();
  return runs;
}

using PatternKey = std::vector<ir::MopKind>;

}  // namespace

std::vector<Candidate> mine_candidates(const ir::Module& module,
                                       const ir::LoweredModule& lowered,
                                       const profile::ModuleProfile& prof,
                                       const MineOptions& opts) {
  // invariant: MineOptions come from code (ReportOptions defaults), not from
  // a user-facing flag.
  PARTITA_ASSERT(opts.min_length >= 2 && opts.max_length >= opts.min_length);

  // First pass: gather every window as a key with per-function static
  // counts (overlapping, for discovery).
  std::map<PatternKey, std::map<std::uint32_t, std::int64_t>> discovery;
  for (std::uint32_t f = 0; f < module.function_count(); ++f) {
    const ir::LoweredFunction& lf = lowered.functions[f];
    for (const auto& run : straight_line_runs(lf.mops)) {
      for (int len = opts.min_length;
           len <= opts.max_length && len <= static_cast<int>(run.size()); ++len) {
        for (std::size_t start = 0; start + len <= run.size(); ++start) {
          PatternKey key(run.begin() + static_cast<std::ptrdiff_t>(start),
                         run.begin() + static_cast<std::ptrdiff_t>(start + len));
          discovery[key][f] += 1;
        }
      }
    }
  }

  // Second pass: for each surviving pattern, count NON-overlapping
  // occurrences per function (greedy left-to-right) and weight by frequency.
  std::vector<Candidate> out;
  for (auto& [key, per_fn] : discovery) {
    Candidate cand;
    cand.pattern = key;
    for (std::uint32_t f = 0; f < module.function_count(); ++f) {
      if (!per_fn.count(f)) continue;
      const ir::LoweredFunction& lf = lowered.functions[f];
      std::int64_t n = 0;
      for (const auto& run : straight_line_runs(lf.mops)) {
        std::size_t i = 0;
        while (i + key.size() <= run.size()) {
          if (std::equal(key.begin(), key.end(), run.begin() + static_cast<std::ptrdiff_t>(i))) {
            ++n;
            i += key.size();
          } else {
            ++i;
          }
        }
      }
      cand.static_occurrences += n;
      cand.dynamic_occurrences +=
          static_cast<double>(n) * std::max(prof.function_frequency[f], 0.0);
    }
    if (cand.static_occurrences >= 2 &&
        cand.dynamic_occurrences >= opts.min_dynamic_occurrences) {
      out.push_back(std::move(cand));
    }
  }

  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    if (a.fetch_cycles_saved() != b.fetch_cycles_saved()) {
      return a.fetch_cycles_saved() > b.fetch_cycles_saved();
    }
    return a.pattern < b.pattern;  // deterministic tie-break
  });
  if (out.size() > opts.max_candidates) out.resize(opts.max_candidates);
  return out;
}

CInstPlan plan_cinstructions(const std::vector<Candidate>& candidates,
                             const PlanOptions& opts) {
  CInstPlan plan;
  if (candidates.empty()) return plan;

  ilp::Model m;
  m.set_sense(ilp::Sense::kMaximize);
  std::vector<ilp::VarIndex> x;
  x.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    x.push_back(m.add_binary("c" + std::to_string(i), candidates[i].fetch_cycles_saved()));
  }
  {
    std::vector<ilp::Term> words, count;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      words.push_back({x[i], static_cast<double>(candidates[i].urom_words())});
      count.push_back({x[i], 1.0});
    }
    m.add_row("urom_budget", std::move(words), ilp::RowSense::kLessEqual,
              static_cast<double>(opts.urom_word_budget));
    m.add_row("opcode_cap", std::move(count), ilp::RowSense::kLessEqual,
              static_cast<double>(opts.max_cinstructions));
  }

  const ilp::IlpResult r = ilp::solve_ilp(m);
  PARTITA_ASSERT(r.has_solution);  // x = 0 is always feasible
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (r.x[i] > 0.5) {
      plan.chosen.push_back(candidates[i]);
      plan.code_slots_saved += candidates[i].code_slots_saved();
      plan.fetch_cycles_saved += candidates[i].fetch_cycles_saved();
      plan.urom_words += candidates[i].urom_words();
    }
  }
  return plan;
}

}  // namespace partita::cinst

// C-instruction generation.
//
// The paper's flow (Section 2) matches the MOP list to P-instructions, then
// generates C-instructions -- application-specific micro-coded instructions
// that bundle a frequent MOP sequence into one fetched instruction, shrinking
// code memory and fetch count -- before the S-instruction step this
// repository centers on. The algorithm here is a faithful-but-compact version
// of that companion step (reference [9] of the paper):
//
//  1. mine_candidates(): slide windows of length 2..max over the lowered
//     straight-line MOP streams (control ops break the window), count
//     non-overlapping static occurrences per function, and weight them by
//     the function's profiled execution frequency;
//  2. plan_cinstructions(): a knapsack ILP -- maximize saved fetch cycles
//     subject to a micro-ROM word budget and an instruction-count cap
//     (opcode space is finite). Pattern-overlap interactions are not
//     modeled (the classic simplification; candidates rarely overlap after
//     non-overlapping counting).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/lower.hpp"
#include "profile/profile.hpp"

namespace partita::cinst {

/// One candidate C-instruction: a straight-line MOP pattern.
struct Candidate {
  std::vector<ir::MopKind> pattern;
  /// Non-overlapping static occurrences across the whole module.
  std::int64_t static_occurrences = 0;
  /// Occurrences weighted by function execution frequency.
  double dynamic_occurrences = 0.0;

  int length() const { return static_cast<int>(pattern.size()); }
  /// Code-memory slots freed: every occurrence replaces `length` fetched
  /// instructions by one.
  std::int64_t code_slots_saved() const {
    return static_occurrences * (length() - 1);
  }
  /// Fetch cycles saved per run (one fetch per replaced instruction).
  double fetch_cycles_saved() const { return dynamic_occurrences * (length() - 1); }
  /// Micro-ROM words the C-instruction's micro-code occupies.
  std::int64_t urom_words() const { return length(); }

  std::string name() const;
};

struct MineOptions {
  int min_length = 2;
  int max_length = 6;
  /// Candidates below this dynamic weight are dropped.
  double min_dynamic_occurrences = 2.0;
  /// Keep only the top-N candidates by fetch savings.
  std::size_t max_candidates = 64;
};

std::vector<Candidate> mine_candidates(const ir::Module& module,
                                       const ir::LoweredModule& lowered,
                                       const profile::ModuleProfile& prof,
                                       const MineOptions& opts = {});

struct PlanOptions {
  /// Micro-ROM words available for C-instruction micro-code.
  std::int64_t urom_word_budget = 64;
  /// Opcode-space cap on the number of C-instructions.
  std::size_t max_cinstructions = 8;
};

struct CInstPlan {
  std::vector<Candidate> chosen;
  std::int64_t code_slots_saved = 0;
  double fetch_cycles_saved = 0.0;
  std::int64_t urom_words = 0;
};

/// Optimal knapsack selection via the ILP solver.
CInstPlan plan_cinstructions(const std::vector<Candidate>& candidates,
                             const PlanOptions& opts = {});

}  // namespace partita::cinst

// Implementation methods (IMPs).
//
// An IMP_ij is one concrete way of implementing s-call SC_i: an IP, an
// interface type, optionally a parallel-code arrangement, with its
// performance gain and area cost. The selector's decision variables x_ij
// range over these.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "iface/model.hpp"
#include "iface/types.hpp"
#include "iplib/library.hpp"
#include "ir/ids.hpp"

namespace partita::isel {

using ImpIndex = std::uint32_t;

/// How the IMP exploits parallel code.
enum class PcUse : std::uint8_t {
  kNone,          // no overlap
  kPlain,         // Problem 1 PC (no s-calls inside)
  kWithScallSw,   // Problem 2 PC containing software bodies of other s-calls
};

std::string_view to_string(PcUse u);

struct Imp {
  ImpIndex index = 0;
  /// The s-call this IMP implements (SC_i).
  ir::CallSiteId scall;
  /// The IP used (the k of s_ijk) and the function entry driven on it. For
  /// flattened (hierarchy) IMPs this is the *lower-level* IP actually
  /// instantiated.
  iplib::IpId ip;
  const iplib::IpFunction* ip_function = nullptr;
  iface::InterfaceType iface_type = iface::InterfaceType::kType0;

  /// Cycles saved by one execution of the s-call versus pure software.
  std::int64_t gain_per_exec = 0;
  /// Expected total gain per run (gain_per_exec * profile frequency): the
  /// paper's g_ij as used in Eq. 2 for frequency-1 paths.
  std::int64_t gain = 0;
  /// Interface area c_ij (controller + buffers + protocol transformer).
  double interface_area = 0.0;
  /// Interface power draw (zero for software controllers).
  double interface_power = 0.0;

  /// Parallel-code arrangement.
  PcUse pc_use = PcUse::kNone;
  std::int64_t parallel_cycles = 0;  // T_C offered to the timing model
  /// s-calls whose software implementation this IMP's PC consumes
  /// (SC-PC conflicts; Problem 2 only).
  std::vector<ir::CallSiteId> pc_consumed_scalls;

  /// Hierarchy: true when this IMP implements the s-call by keeping the
  /// callee in software and accelerating `flatten_depth` levels further down
  /// (IMP flattening).
  bool flattened = false;
  int flatten_depth = 0;
  /// Lower-level executions of the IP per one execution of the s-call (1 for
  /// direct IMPs).
  double inner_calls_per_exec = 1.0;

  /// Timing breakdown of one S-instruction execution (direct IMPs).
  iface::InterfaceTiming timing;

  /// "IP12,IF0,115037,3"-style cell used in the result tables.
  std::string cell(const iplib::IpLibrary& lib) const;
  /// Longer human-readable description.
  std::string describe(const iplib::IpLibrary& lib) const;
};

}  // namespace partita::isel

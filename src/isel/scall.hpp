// S-instruction candidate (s-call) discovery.
//
// Definition 1: a function call is an s-call candidate when the callee can be
// implemented by an IP. Following the paper's hierarchy handling, the ILP
// formulation sees only the *top-level* s-calls (call sites in the entry
// function); s-calls nested inside callees are folded into the top-level
// IMPs by IMP flattening (enumerate.hpp).
#pragma once

#include <string>
#include <vector>

#include "cdfg/cdfg.hpp"
#include "iplib/library.hpp"
#include "ir/function.hpp"
#include "profile/profile.hpp"

namespace partita::isel {

/// One top-level s-call: SC_i in the paper.
struct SCall {
  ir::CallSiteId site;
  ir::FuncId callee;
  std::string callee_name;
  /// Software execution cycles of one call (the paper's T_SW).
  std::int64_t t_sw = 0;
  /// Expected executions per run (profile frequency).
  double frequency = 1.0;
  /// The call's node in the entry function's CDFG.
  cdfg::NodeIndex node = cdfg::kInvalidNode;
};

/// Finds the top-level s-calls: call sites in the entry function whose callee
/// is IP-mappable and is executable either directly by a library IP or
/// indirectly through an IP-mappable descendant (hierarchy).
/// `entry_cdfg` must be the CDFG of the entry function.
std::vector<SCall> find_scalls(const ir::Module& module,
                               const profile::ModuleProfile& prof,
                               const iplib::IpLibrary& lib, const cdfg::Cdfg& entry_cdfg);

/// True when `func` (or, transitively, one of its callees) can be executed by
/// some IP in the library.
bool ip_reachable(const ir::Module& module, const iplib::IpLibrary& lib, ir::FuncId func);

}  // namespace partita::isel

#include "isel/enumerate.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/assert.hpp"

namespace partita::isel {

ImpDatabase::ImpDatabase(const ir::Module& module, const profile::ModuleProfile& prof,
                         const iplib::IpLibrary& lib, const cdfg::Cdfg& entry_cdfg,
                         const std::vector<cdfg::ExecPath>& paths,
                         const std::vector<SCall>& scalls, const EnumerateOptions& opts)
    : module_(module),
      prof_(prof),
      lib_(lib),
      entry_cdfg_(entry_cdfg),
      paths_(paths),
      opts_(opts),
      scalls_(scalls) {
  for (const SCall& sc : scalls_) build_for_scall(sc);
  prune_dominated();
}

void ImpDatabase::prune_dominated() {
  // A dominates B when both implement the same s-call on the same IP, A's
  // gain is no smaller, its interface no bigger, and it conflicts with no
  // more s-calls. Dropping B never removes an optimal solution because any
  // selection using B can swap in A without violating a constraint or
  // raising the objective (the shared-IP fixed charge is identical).
  auto subset = [](const std::vector<ir::CallSiteId>& a,
                   const std::vector<ir::CallSiteId>& b) {
    for (ir::CallSiteId c : a) {
      if (std::find(b.begin(), b.end(), c) == b.end()) return false;
    }
    return true;
  };

  std::vector<bool> dead(imps_.size(), false);
  for (std::size_t a = 0; a < imps_.size(); ++a) {
    if (dead[a]) continue;
    for (std::size_t b = 0; b < imps_.size(); ++b) {
      if (a == b || dead[b]) continue;
      const Imp& A = imps_[a];
      const Imp& B = imps_[b];
      if (A.scall != B.scall || A.ip != B.ip) continue;
      const bool dominates =
          A.gain_per_exec >= B.gain_per_exec && A.interface_area <= B.interface_area &&
          subset(A.pc_consumed_scalls, B.pc_consumed_scalls);
      const bool strictly =
          A.gain_per_exec > B.gain_per_exec || A.interface_area < B.interface_area ||
          A.pc_consumed_scalls.size() < B.pc_consumed_scalls.size() || a < b;
      if (dominates && strictly) dead[b] = true;
    }
  }

  std::vector<Imp> kept;
  kept.reserve(imps_.size());
  for (std::size_t i = 0; i < imps_.size(); ++i) {
    if (dead[i]) continue;
    Imp imp = std::move(imps_[i]);
    imp.index = static_cast<ImpIndex>(kept.size());
    kept.push_back(std::move(imp));
  }
  imps_ = std::move(kept);
}

std::vector<ImpIndex> ImpDatabase::imps_for(ir::CallSiteId sc) const {
  std::vector<ImpIndex> out;
  for (const Imp& imp : imps_) {
    if (imp.scall == sc) out.push_back(imp.index);
  }
  return out;
}

const SCall* ImpDatabase::scall_of(ir::CallSiteId sc) const {
  auto it = std::find_if(scalls_.begin(), scalls_.end(),
                         [&](const SCall& s) { return s.site == sc; });
  return it == scalls_.end() ? nullptr : &*it;
}

std::unordered_map<std::uint32_t, double> ImpDatabase::local_callee_counts(
    const ir::Function& fn) const {
  std::unordered_map<std::uint32_t, double> counts;
  // Walk the statement tree with a frequency multiplier, mirroring the
  // profiler but relative to ONE invocation of fn.
  struct Walker {
    const ir::Function& fn;
    std::unordered_map<std::uint32_t, double>& counts;
    void seq(const std::vector<ir::StmtId>& stmts, double mult) {
      for (ir::StmtId id : stmts) visit(fn.stmt(id), mult);
    }
    void visit(const ir::Stmt& s, double mult) {
      switch (s.kind) {
        case ir::StmtKind::kSeg:
          break;
        case ir::StmtKind::kCall:
          counts[s.callee.value()] += mult;
          break;
        case ir::StmtKind::kIf:
          seq(s.then_stmts, mult * s.taken_prob);
          seq(s.else_stmts, mult * (1 - s.taken_prob));
          break;
        case ir::StmtKind::kLoop:
          seq(s.body_stmts, mult * static_cast<double>(s.trip_count));
          break;
      }
    }
  } w{fn, counts};
  w.seq(fn.body(), 1.0);
  return counts;
}

const std::vector<ImpDatabase::FuncImp>& ImpDatabase::function_imps(ir::FuncId f,
                                                                    int depth) {
  auto it = func_imp_cache_.find(f.value());
  if (it != func_imp_cache_.end()) return it->second;

  std::vector<FuncImp> result;
  const ir::Function& fn = module_.function(f);
  const std::int64_t t_sw = prof_.cycles_of(f);

  // --- direct IMPs: some IP executes this very function -------------------
  if (fn.ip_mappable()) {
    for (const iplib::Implementor& impl : lib_.implementors_of(fn.name())) {
      const iplib::IpDescriptor& ip = lib_.ip(impl.ip);
      for (iface::InterfaceType type : opts_.allowed_types) {
        if (!iface::applicable(type, ip, opts_.kernel).ok) continue;
        FuncImp fi;
        fi.ip = impl.ip;
        fi.ip_function = impl.function;
        fi.type = type;
        fi.timing = iface::interface_timing(type, ip, *impl.function, 0, opts_.kernel);
        fi.saved_per_exec = t_sw - fi.timing.total_cycles;
        fi.interface_area =
            iface::interface_cost(type, ip, *impl.function, opts_.kernel).total();
        fi.interface_power = iface::interface_power(type, ip, opts_.kernel);
        // Keep even non-positive direct entries: an IP slower than software
        // can still win once parallel code overlaps it (Section 3's "a
        // slower IP with a parallel code may be better"). Useless variants
        // are filtered at emission.
        result.push_back(fi);
      }
    }
  }

  // --- flattened IMPs: keep fn in software, lift a descendant's IMP -------
  if (depth < opts_.max_flatten_depth && !fn.body().empty()) {
    for (const auto& [callee_raw, count] : local_callee_counts(fn)) {
      if (count <= 0) continue;
      const ir::FuncId callee{callee_raw};
      for (const FuncImp& inner : function_imps(callee, depth + 1)) {
        if (inner.saved_per_exec <= 0) continue;  // lifting cannot rescue it
        FuncImp fi = inner;
        fi.flattened = true;
        fi.depth = inner.depth + 1;
        fi.inner_per_exec = inner.inner_per_exec * count;
        fi.saved_per_exec = static_cast<std::int64_t>(
            std::llround(static_cast<double>(inner.saved_per_exec) * count));
        // One interface instance serves every inner execution.
        fi.interface_area = inner.interface_area;
        if (fi.saved_per_exec > 0) result.push_back(fi);
      }
    }
  }

  auto [ins, ok] = func_imp_cache_.emplace(f.value(), std::move(result));
  PARTITA_ASSERT(ok);
  return ins->second;
}

void ImpDatabase::add_imp(Imp imp) {
  // Deduplicate: identical (scall, ip, type, pc_use, gain) adds nothing.
  for (const Imp& e : imps_) {
    if (e.scall == imp.scall && e.ip == imp.ip && e.iface_type == imp.iface_type &&
        e.pc_use == imp.pc_use && e.gain == imp.gain && e.flattened == imp.flattened) {
      return;
    }
  }
  imp.index = static_cast<ImpIndex>(imps_.size());
  imps_.push_back(std::move(imp));
}

void ImpDatabase::build_for_scall(const SCall& sc) {
  const std::int64_t t_sw = sc.t_sw;

  // Parallel-code material from the caller's CDFG (top-level context).
  cdfg::ParallelCode pc_plain;
  std::vector<cdfg::ParallelCode> pc_sw_variants;  // consuming 1..n s-calls
  if (opts_.use_parallel_code && sc.node != cdfg::kInvalidNode) {
    const auto is_scall = [this](ir::CallSiteId c) { return scall_of(c) != nullptr; };
    cdfg::PcOptions plain_opt;
    plain_opt.is_scall = is_scall;
    pc_plain = cdfg::parallel_code(entry_cdfg_, sc.node, paths_, plain_opt);
    if (opts_.problem2) {
      cdfg::PcOptions sw_opt;
      sw_opt.allow_scall_software = true;
      sw_opt.is_scall = is_scall;
      const cdfg::ParallelCode full =
          cdfg::parallel_code(entry_cdfg_, sc.node, paths_, sw_opt);
      // One variant per consumption prefix: consuming fewer s-calls yields
      // less overlap but leaves the rest free for their own IPs.
      for (std::size_t k = 1; k <= full.consumed_scalls.size(); ++k) {
        sw_opt.max_consumed = k;
        cdfg::ParallelCode pc = cdfg::parallel_code(entry_cdfg_, sc.node, paths_, sw_opt);
        if (pc.cycles > pc_plain.cycles && !pc.consumed_scalls.empty()) {
          pc_sw_variants.push_back(std::move(pc));
        }
      }
    }
  }

  for (const FuncImp& fi : function_imps(sc.callee, 0)) {
    const iplib::IpDescriptor& ip = lib_.ip(fi.ip);

    auto emit = [&](PcUse use, const cdfg::ParallelCode* pc) {
      Imp imp;
      imp.scall = sc.site;
      imp.ip = fi.ip;
      imp.ip_function = fi.ip_function;
      imp.iface_type = fi.type;
      imp.flattened = fi.flattened;
      imp.flatten_depth = fi.depth;
      imp.inner_calls_per_exec = fi.inner_per_exec;
      imp.pc_use = use;

      if (use == PcUse::kNone) {
        imp.timing = fi.timing;
        imp.gain_per_exec = fi.saved_per_exec;
      } else {
        PARTITA_ASSERT(pc != nullptr && !fi.flattened);
        imp.parallel_cycles = pc->cycles;
        imp.pc_consumed_scalls = pc->consumed_scalls;
        imp.timing = iface::interface_timing(fi.type, ip, *fi.ip_function, pc->cycles,
                                             opts_.kernel);
        imp.gain_per_exec = t_sw - imp.timing.total_cycles;
      }
      imp.interface_area = fi.interface_area;
      imp.interface_power = fi.interface_power;
      imp.gain = static_cast<std::int64_t>(
          std::llround(static_cast<double>(imp.gain_per_exec) * sc.frequency));
      if (imp.gain_per_exec > 0) add_imp(std::move(imp));
    };

    emit(PcUse::kNone, nullptr);

    // PC variants only make sense on buffered interfaces of direct IMPs.
    if (!fi.flattened && iface::supports_parallel_execution(fi.type)) {
      if (pc_plain.cycles > 0) emit(PcUse::kPlain, &pc_plain);
      for (const cdfg::ParallelCode& pc : pc_sw_variants) {
        emit(PcUse::kWithScallSw, &pc);
      }
    }
  }
}

std::string ImpDatabase::dump(const iplib::IpLibrary& lib) const {
  std::ostringstream os;
  os << "IMP database: " << imps_.size() << " IMPs for " << scalls_.size()
     << " s-calls\n";
  for (const SCall& sc : scalls_) {
    os << "  SC" << sc.site.value() << " = " << sc.callee_name << " (T_SW=" << sc.t_sw
       << ", freq=" << sc.frequency << ")\n";
    for (ImpIndex i : imps_for(sc.site)) {
      os << "    IMP" << i << ": " << imps_[i].describe(lib) << '\n';
    }
  }
  return os.str();
}

}  // namespace partita::isel

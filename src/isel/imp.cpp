#include "isel/imp.hpp"

#include <sstream>

#include "support/strings.hpp"

namespace partita::isel {

std::string_view to_string(PcUse u) {
  switch (u) {
    case PcUse::kNone:
      return "no-pc";
    case PcUse::kPlain:
      return "pc";
    case PcUse::kWithScallSw:
      return "pc+sw-scall";
  }
  return "?";
}

std::string Imp::cell(const iplib::IpLibrary& lib) const {
  std::ostringstream os;
  os << lib.ip(ip).name << ',' << iface::short_name(iface_type) << ',' << gain << ','
     << support::compact_double(interface_area);
  return os.str();
}

std::string Imp::describe(const iplib::IpLibrary& lib) const {
  std::ostringstream os;
  os << lib.ip(ip).name << " (" << ip_function->function << ") via "
     << iface::short_name(iface_type);
  if (flattened) os << " [flattened x" << support::compact_double(inner_calls_per_exec) << "]";
  if (pc_use != PcUse::kNone) {
    os << " [" << to_string(pc_use) << " T_C=" << parallel_cycles << "]";
  }
  os << " gain/exec=" << gain_per_exec << " gain=" << gain
     << " if-area=" << support::compact_double(interface_area);
  return os.str();
}

}  // namespace partita::isel

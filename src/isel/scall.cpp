#include "isel/scall.hpp"

namespace partita::isel {

bool ip_reachable(const ir::Module& module, const iplib::IpLibrary& lib, ir::FuncId func) {
  const ir::Function& fn = module.function(func);
  if (fn.ip_mappable() && !lib.implementors_of(fn.name()).empty()) return true;
  for (ir::FuncId callee : module.callees_of(func)) {
    if (ip_reachable(module, lib, callee)) return true;
  }
  return false;
}

std::vector<SCall> find_scalls(const ir::Module& module,
                               const profile::ModuleProfile& prof,
                               const iplib::IpLibrary& lib, const cdfg::Cdfg& entry_cdfg) {
  std::vector<SCall> out;
  for (const ir::CallSite& cs : module.call_sites()) {
    if (cs.caller != module.entry()) continue;
    const ir::Function& callee = module.function(cs.callee);
    if (!callee.ip_mappable() && !ip_reachable(module, lib, cs.callee)) continue;
    if (!ip_reachable(module, lib, cs.callee)) continue;

    SCall sc;
    sc.site = cs.id;
    sc.callee = cs.callee;
    sc.callee_name = callee.name();
    sc.t_sw = prof.cycles_of(cs.callee);
    sc.frequency = prof.frequency_of(cs.id);
    sc.node = entry_cdfg.node_of_call(cs.id);
    out.push_back(std::move(sc));
  }
  return out;
}

}  // namespace partita::isel

// IMP enumeration: building the IMP database (Section 4).
//
// For every top-level s-call SC_i the database holds all IMP_ij:
//
//  * direct IMPs -- each (IP implementing the callee) x (applicable interface
//    type), with the Section 3 timing/area model;
//  * parallel-code variants -- for buffered interfaces, the same IMP with the
//    caller's PC_i overlapped (Problem 1 PC, and under Problem 2 also a PC
//    that absorbs the software bodies of other s-calls, recording the
//    SC-PC conflict partners);
//  * flattened IMPs (hierarchy) -- the callee stays in software and a
//    descendant's IMP is lifted: IMPs of dct1d() are considered when
//    computing those of dct2d(), and so on ("IMP flatten").
//
// Only IMPs with a strictly positive per-execution gain survive; the
// selector treats "no IMP selected" as the pure-software fallback.
#pragma once

#include <unordered_map>
#include <vector>

#include "cdfg/parallel.hpp"
#include "cdfg/paths.hpp"
#include "iface/kernel.hpp"
#include "isel/imp.hpp"
#include "isel/scall.hpp"

namespace partita::isel {

struct EnumerateOptions {
  iface::KernelParams kernel;
  /// Offer parallel-code variants on buffered interfaces.
  bool use_parallel_code = true;
  /// Problem 2: allow software bodies of other s-calls inside a PC and
  /// (in the selector) differing implementations per call site.
  bool problem2 = true;
  /// Interface types the design may use (ablation hook).
  std::vector<iface::InterfaceType> allowed_types{
      iface::kAllInterfaceTypes.begin(), iface::kAllInterfaceTypes.end()};
  /// Maximum hierarchy depth for IMP flattening.
  int max_flatten_depth = 6;
};

class ImpDatabase {
 public:
  /// Builds the database. `entry_cdfg`/`paths` must describe the module's
  /// entry function, with call cycles annotated from the profile.
  ImpDatabase(const ir::Module& module, const profile::ModuleProfile& prof,
              const iplib::IpLibrary& lib, const cdfg::Cdfg& entry_cdfg,
              const std::vector<cdfg::ExecPath>& paths, const std::vector<SCall>& scalls,
              const EnumerateOptions& opts = {});

  const std::vector<Imp>& imps() const { return imps_; }
  const std::vector<SCall>& scalls() const { return scalls_; }

  /// Indices of the IMPs implementing one s-call.
  std::vector<ImpIndex> imps_for(ir::CallSiteId sc) const;

  const SCall* scall_of(ir::CallSiteId sc) const;

  /// Multi-line description of the whole database.
  std::string dump(const iplib::IpLibrary& lib) const;

 private:
  /// Context-free implementation method for one *function* execution.
  struct FuncImp {
    iplib::IpId ip;
    const iplib::IpFunction* ip_function = nullptr;
    iface::InterfaceType type = iface::InterfaceType::kType0;
    std::int64_t saved_per_exec = 0;
    double interface_area = 0;
    double interface_power = 0;
    bool flattened = false;
    int depth = 0;
    double inner_per_exec = 1.0;
    iface::InterfaceTiming timing;
  };

  const std::vector<FuncImp>& function_imps(ir::FuncId f, int depth);
  std::unordered_map<std::uint32_t, double> local_callee_counts(const ir::Function& fn) const;
  void build_for_scall(const SCall& sc);
  void add_imp(Imp imp);
  /// Drops IMPs strictly dominated by a same-s-call, same-IP alternative
  /// (no worse gain, no bigger interface, no extra conflicts).
  void prune_dominated();

  const ir::Module& module_;
  const profile::ModuleProfile& prof_;
  const iplib::IpLibrary& lib_;
  const cdfg::Cdfg& entry_cdfg_;
  const std::vector<cdfg::ExecPath>& paths_;
  EnumerateOptions opts_;

  std::vector<SCall> scalls_;
  std::vector<Imp> imps_;
  std::unordered_map<std::uint32_t, std::vector<FuncImp>> func_imp_cache_;
};

}  // namespace partita::isel

#include "ucode/urom.hpp"

#include <sstream>
#include <unordered_map>

#include "support/assert.hpp"

namespace partita::ucode {

UWord word_from_line(const iface::IfLine& line) {
  std::string sig;
  for (std::size_t i = 0; i < line.ops.size(); ++i) {
    if (i) sig += '+';
    sig += to_string(line.ops[i]);
  }
  if (sig.empty()) sig = "nop";
  return UWord{std::move(sig)};
}

std::vector<UWord> words_from_program(const iface::InterfaceProgram& prog) {
  std::vector<UWord> words;
  for (const iface::IfSection& section : prog.sections) {
    for (const iface::IfLine& line : section.body) {
      words.push_back(word_from_line(line));
    }
  }
  return words;
}

std::size_t Urom::add_sequence(std::string name, std::vector<UWord> words) {
  PARTITA_ASSERT_MSG(!optimized_, "add_sequence after optimize()");
  seqs_.push_back({std::move(name), std::move(words), {}});
  return seqs_.size() - 1;
}

void Urom::optimize() {
  if (optimized_) return;
  std::unordered_map<std::string, std::uint32_t> index;
  for (Sequence& seq : seqs_) {
    seq.pointers.clear();
    seq.pointers.reserve(seq.words.size());
    for (const UWord& w : seq.words) {
      auto [it, inserted] = index.emplace(w.signature, static_cast<std::uint32_t>(nano_.size()));
      if (inserted) nano_.push_back(w);
      seq.pointers.push_back(it->second);
    }
  }
  optimized_ = true;
}

namespace {
std::int64_t bits_for(std::int64_t n) {
  std::int64_t bits = 1;
  while ((std::int64_t{1} << bits) < n) ++bits;
  return bits;
}
}  // namespace

UromStats Urom::stats() const {
  UromStats s;
  s.sequences = static_cast<std::int64_t>(seqs_.size());
  for (const Sequence& seq : seqs_) {
    s.raw_words += static_cast<std::int64_t>(seq.words.size());
  }
  s.raw_bits = s.raw_words * word_bits_;
  if (optimized_) {
    s.unique_words = static_cast<std::int64_t>(nano_.size());
    s.pointer_bits = nano_.empty() ? 0 : bits_for(s.unique_words);
    s.optimized_bits = s.unique_words * word_bits_ + s.raw_words * s.pointer_bits;
  } else {
    s.unique_words = s.raw_words;
    s.optimized_bits = s.raw_bits;
  }
  return s;
}

std::string Urom::dump() const {
  std::ostringstream os;
  const UromStats s = stats();
  os << "u-ROM: " << s.sequences << " sequences, " << s.raw_words << " raw words";
  if (optimized_) {
    os << ", " << s.unique_words << " unique (" << s.pointer_bits << "-bit pointers), "
       << s.raw_bits << " -> " << s.optimized_bits << " bits";
  }
  os << '\n';
  for (const Sequence& seq : seqs_) {
    os << "  " << seq.name << " (" << seq.words.size() << " words)";
    if (optimized_) {
      os << " ->";
      for (std::uint32_t p : seq.pointers) os << ' ' << p;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace partita::ucode

#include "ucode/isa.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <sstream>

#include "ir/mop.hpp"
#include "support/assert.hpp"

namespace partita::ucode {

std::string_view to_string(InstrClass c) {
  switch (c) {
    case InstrClass::kP:
      return "P";
    case InstrClass::kC:
      return "C";
    case InstrClass::kS:
      return "S";
  }
  return "?";
}

namespace {

// One primitive instruction per directly-executed MopKind (IpDispatch is
// S-class by definition; Nop is the implicit filler).
constexpr ir::MopKind kPrimitives[] = {
    ir::MopKind::kAdd,    ir::MopKind::kSub,    ir::MopKind::kMul,
    ir::MopKind::kMac,    ir::MopKind::kShift,  ir::MopKind::kAnd,
    ir::MopKind::kOr,     ir::MopKind::kXor,    ir::MopKind::kCmp,
    ir::MopKind::kMove,   ir::MopKind::kConst,  ir::MopKind::kLoad,
    ir::MopKind::kStore,  ir::MopKind::kAguAdd, ir::MopKind::kBranch,
    ir::MopKind::kBranchIf, ir::MopKind::kCall, ir::MopKind::kReturn,
};

}  // namespace

void InstructionSet::seed_p_class(double base_frequency) {
  for (ir::MopKind k : kPrimitives) {
    Instruction instr;
    instr.name = std::string(ir::to_string(k));
    instr.cls = InstrClass::kP;
    instr.frequency = base_frequency;
    instr.urom_words = 1;
    instrs_.push_back(std::move(instr));
  }
  encoded_ = false;
}

void InstructionSet::seed_p_class_weighted(const std::vector<double>& kind_frequency,
                                           double fallback) {
  for (ir::MopKind k : kPrimitives) {
    Instruction instr;
    instr.name = std::string(ir::to_string(k));
    instr.cls = InstrClass::kP;
    const auto idx = static_cast<std::size_t>(k);
    instr.frequency =
        idx < kind_frequency.size() && kind_frequency[idx] > 0 ? kind_frequency[idx]
                                                               : fallback;
    instr.urom_words = 1;
    instrs_.push_back(std::move(instr));
  }
  encoded_ = false;
}

std::size_t InstructionSet::add(Instruction instr) {
  instrs_.push_back(std::move(instr));
  encoded_ = false;
  return instrs_.size() - 1;
}

std::size_t InstructionSet::count_of(InstrClass c) const {
  return static_cast<std::size_t>(
      std::count_if(instrs_.begin(), instrs_.end(),
                    [&](const Instruction& i) { return i.cls == c; }));
}

int InstructionSet::fixed_opcode_bits() const {
  if (instrs_.size() <= 1) return 1;
  int bits = 0;
  std::size_t cap = 1;
  while (cap < instrs_.size()) {
    cap <<= 1;
    ++bits;
  }
  return bits;
}

void InstructionSet::encode() {
  PARTITA_ASSERT_MSG(!instrs_.empty(), "cannot encode an empty instruction set");

  if (instrs_.size() == 1) {
    instrs_[0].opcode = 0;
    instrs_[0].opcode_bits = 1;
    encoded_ = true;
    return;
  }

  // --- Huffman over frequencies ------------------------------------------
  struct Node {
    double weight;
    int id;          // tie-break: lower id first (deterministic)
    int left = -1;   // children into the node arena; -1 for leaves
    int right = -1;
    int instr = -1;  // leaf: instruction index
  };
  std::vector<Node> arena;
  auto cmp = [&](int a, int b) {
    if (arena[a].weight != arena[b].weight) return arena[a].weight > arena[b].weight;
    return arena[a].id > arena[b].id;
  };
  std::priority_queue<int, std::vector<int>, decltype(cmp)> heap(cmp);

  int next_id = 0;
  for (std::size_t i = 0; i < instrs_.size(); ++i) {
    Node leaf;
    leaf.weight = std::max(instrs_[i].frequency, 1e-9);
    leaf.id = next_id++;
    leaf.instr = static_cast<int>(i);
    arena.push_back(leaf);
    heap.push(static_cast<int>(arena.size() - 1));
  }
  while (heap.size() > 1) {
    const int a = heap.top();
    heap.pop();
    const int b = heap.top();
    heap.pop();
    Node parent;
    parent.weight = arena[a].weight + arena[b].weight;
    parent.id = next_id++;
    parent.left = a;
    parent.right = b;
    arena.push_back(parent);
    heap.push(static_cast<int>(arena.size() - 1));
  }

  // Depth of each leaf = code length.
  std::vector<int> lengths(instrs_.size(), 0);
  struct Frame {
    int node;
    int depth;
  };
  std::vector<Frame> stack{{static_cast<int>(arena.size() - 1), 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node& n = arena[f.node];
    if (n.instr >= 0) {
      lengths[static_cast<std::size_t>(n.instr)] = std::max(f.depth, 1);
      continue;
    }
    stack.push_back({n.left, f.depth + 1});
    stack.push_back({n.right, f.depth + 1});
  }

  // --- canonical code assignment -----------------------------------------
  std::vector<std::size_t> order(instrs_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (lengths[a] != lengths[b]) return lengths[a] < lengths[b];
    return a < b;
  });
  std::uint32_t code = 0;
  int prev_len = 0;
  for (std::size_t idx : order) {
    code <<= (lengths[idx] - prev_len);
    instrs_[idx].opcode = code;
    instrs_[idx].opcode_bits = lengths[idx];
    prev_len = lengths[idx];
    ++code;
  }
  encoded_ = true;
  PARTITA_ASSERT(codes_are_prefix_free());
}

double InstructionSet::expected_opcode_bits() const {
  PARTITA_ASSERT_MSG(encoded_, "encode() first");
  double total_w = 0, total_bits = 0;
  for (const Instruction& i : instrs_) {
    const double w = std::max(i.frequency, 1e-9);
    total_w += w;
    total_bits += w * i.opcode_bits;
  }
  return total_w > 0 ? total_bits / total_w : 0.0;
}

bool InstructionSet::codes_are_prefix_free() const {
  // Kraft sum == 1 for a complete prefix code, <= 1 for any prefix code;
  // additionally no code may prefix another.
  double kraft = 0;
  for (const Instruction& i : instrs_) {
    if (i.opcode_bits <= 0) return false;
    kraft += std::ldexp(1.0, -i.opcode_bits);
  }
  if (kraft > 1.0 + 1e-9) return false;
  for (std::size_t a = 0; a < instrs_.size(); ++a) {
    for (std::size_t b = 0; b < instrs_.size(); ++b) {
      if (a == b) continue;
      const Instruction& s = instrs_[a];  // candidate prefix
      const Instruction& l = instrs_[b];
      if (s.opcode_bits <= l.opcode_bits &&
          (l.opcode >> (l.opcode_bits - s.opcode_bits)) == s.opcode) {
        return false;
      }
    }
  }
  return true;
}

std::string InstructionSet::dump() const {
  std::ostringstream os;
  for (const Instruction& i : instrs_) {
    os << to_string(i.cls) << " | " << i.name << " | freq " << i.frequency << " | "
       << i.urom_words << " words";
    if (encoded_) {
      os << " | opcode ";
      for (int b = i.opcode_bits - 1; b >= 0; --b) os << ((i.opcode >> b) & 1);
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace partita::ucode

// Instruction-set assembly and encoding.
//
// Section 2 of the paper: the generated ASIP supports three instruction
// classes -- P (primitive, always present), C (application-specific,
// micro-coded, compress code memory), and S (the IP-backed instructions this
// reproduction generates). After selection, "all newly generated
// instructions are encoded in the instruction space".
//
// This module assembles the final instruction set from a Selection and
// encodes it. Two encodings are provided:
//
//  * fixed-width -- ceil(log2(n)) opcode bits for n instructions (the
//    baseline);
//  * frequency-aware Huffman -- shorter opcodes for hotter instructions,
//    canonicalized, reported as expected opcode bits per fetch. This is the
//    knob that keeps code memory reasonable when C/S instructions multiply.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "iface/types.hpp"
#include "ir/ids.hpp"

namespace partita::ucode {

enum class InstrClass : std::uint8_t { kP, kC, kS };

std::string_view to_string(InstrClass c);

struct Instruction {
  std::string name;
  InstrClass cls = InstrClass::kP;
  /// Expected executions per application run (profile weight for encoding).
  double frequency = 0.0;
  /// Micro-words this instruction occupies in the u-ROM (1 for P-class).
  std::int64_t urom_words = 1;
  /// For S-instructions: the interface type driven (display only).
  iface::InterfaceType iface_type = iface::InterfaceType::kType0;

  /// Assigned opcode (after encode()): value + bit length.
  std::uint32_t opcode = 0;
  int opcode_bits = 0;
};

/// The assembled instruction set of one generated ASIP.
class InstructionSet {
 public:
  /// Seeds the always-present P-class (arithmetic, moves, memory, control --
  /// one per MopKind the kernel executes directly) with the given baseline
  /// frequency per instruction.
  void seed_p_class(double base_frequency = 1.0);

  /// Seeds the P-class with per-kind frequencies (indexed by MopKind value;
  /// missing entries fall back to `fallback`). Used by the report generator
  /// to weight opcodes by the application's real dynamic op mix.
  void seed_p_class_weighted(const std::vector<double>& kind_frequency,
                             double fallback = 1.0);

  /// Adds one instruction; returns its index.
  std::size_t add(Instruction instr);

  const std::vector<Instruction>& instructions() const { return instrs_; }
  std::size_t size() const { return instrs_.size(); }

  std::size_t count_of(InstrClass c) const;

  /// Fixed-width opcode bits for the current instruction count.
  int fixed_opcode_bits() const;

  /// Assigns canonical Huffman opcodes by frequency (ties broken by index
  /// for determinism). Instructions with zero frequency are treated as
  /// frequency epsilon so they still receive a code.
  void encode();

  /// Expected opcode bits per executed instruction under the Huffman
  /// encoding; equals fixed_opcode_bits() when frequencies are uniform-ish.
  double expected_opcode_bits() const;

  /// Kraft-inequality check of the assigned code (exact prefix codes sum to
  /// 1); used by tests and asserts in debug builds.
  bool codes_are_prefix_free() const;

  /// One-line-per-instruction dump.
  std::string dump() const;

 private:
  std::vector<Instruction> instrs_;
  bool encoded_ = false;
};

}  // namespace partita::ucode

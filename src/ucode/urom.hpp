// Micro-ROM construction and optimization.
//
// Every C- and S-instruction executes as a micro-code sequence; Section 2:
// "the u-ROM is optimized with including the u-codes for the C-instructions
// and S-instructions". We rebuild that step:
//
//  * sequences are registered per instruction (S-instructions contribute the
//    static body of their expanded interface template, Figs. 4-7);
//  * the optimizer applies two-level micro-programming: identical micro-words
//    across all sequences collapse into a nano-store, and the per-instruction
//    micro-store rows shrink to pointers of ceil(log2(|nano|)) bits. The
//    interface templates share most of their vocabulary (load/store/dec/
//    branch lines), so the win is substantial and measurable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "iface/program.hpp"

namespace partita::ucode {

/// One micro-word, canonicalized to its field signature.
struct UWord {
  std::string signature;
  bool operator==(const UWord&) const = default;
};

/// Builds a UWord per template line (op mnemonics joined with '+').
UWord word_from_line(const iface::IfLine& line);

/// Flattens an interface program into its static micro-word sequence (one
/// entry per stored word; loop bodies appear once -- hardware loop counters
/// re-execute them).
std::vector<UWord> words_from_program(const iface::InterfaceProgram& prog);

struct UromStats {
  std::int64_t sequences = 0;
  std::int64_t raw_words = 0;      // sum of sequence lengths
  std::int64_t unique_words = 0;   // nano-store size after optimize()
  std::int64_t pointer_bits = 0;   // bits per micro-store pointer
  /// Total storage bits: raw (single-level) vs optimized (two-level).
  std::int64_t raw_bits = 0;
  std::int64_t optimized_bits = 0;
  double compression_ratio() const {
    return raw_bits > 0 ? static_cast<double>(optimized_bits) / static_cast<double>(raw_bits)
                        : 1.0;
  }
};

class Urom {
 public:
  /// Width of one raw micro-word in bits (eight 8-bit fields by default).
  explicit Urom(int word_bits = 64) : word_bits_(word_bits) {}

  /// Registers an instruction's micro-code; returns its sequence index.
  std::size_t add_sequence(std::string name, std::vector<UWord> words);

  std::size_t sequence_count() const { return seqs_.size(); }
  const std::vector<UWord>& sequence(std::size_t i) const { return seqs_[i].words; }
  const std::string& sequence_name(std::size_t i) const { return seqs_[i].name; }

  /// Runs two-level optimization; idempotent.
  void optimize();

  bool optimized() const { return optimized_; }
  const std::vector<UWord>& nano_store() const { return nano_; }
  /// Pointer row of a sequence into the nano-store (after optimize()).
  const std::vector<std::uint32_t>& pointer_row(std::size_t i) const {
    return seqs_[i].pointers;
  }

  UromStats stats() const;

  std::string dump() const;

 private:
  struct Sequence {
    std::string name;
    std::vector<UWord> words;
    std::vector<std::uint32_t> pointers;  // filled by optimize()
  };

  int word_bits_;
  std::vector<Sequence> seqs_;
  std::vector<UWord> nano_;
  bool optimized_ = false;
};

}  // namespace partita::ucode

// Lexer for the kernel language (KL).
//
// KL is the textual form of the statement IR: applications are written as a
// module of functions made of `seg` / `call` / `if` / `loop` statements with
// `reads(...)` / `writes(...)` dependence annotations. See
// docs in parser.hpp for the grammar. `#` starts a line comment.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/diagnostics.hpp"

namespace partita::frontend {

enum class TokKind : std::uint8_t {
  kIdent,
  kInt,
  kFloat,
  kLBrace,    // {
  kRBrace,    // }
  kLParen,    // (
  kRParen,    // )
  kComma,     // ,
  kSemi,      // ;
  kEof,
};

std::string_view to_string(TokKind k);

struct Token {
  TokKind kind = TokKind::kEof;
  std::string_view text;       // slice of the source buffer
  std::int64_t int_value = 0;  // for kInt
  double float_value = 0;      // for kFloat
  support::SourceLoc loc;
};

/// Tokenizes the whole buffer. Lexical errors are reported to `diags` and the
/// offending character skipped, so the parser always receives a well-formed
/// stream ending in kEof.
std::vector<Token> lex(std::string_view source, support::DiagnosticEngine& diags);

}  // namespace partita::frontend

#include "frontend/lexer.hpp"

#include <cctype>

#include "support/strings.hpp"

namespace partita::frontend {

std::string_view to_string(TokKind k) {
  switch (k) {
    case TokKind::kIdent:
      return "identifier";
    case TokKind::kInt:
      return "integer";
    case TokKind::kFloat:
      return "float";
    case TokKind::kLBrace:
      return "'{'";
    case TokKind::kRBrace:
      return "'}'";
    case TokKind::kLParen:
      return "'('";
    case TokKind::kRParen:
      return "')'";
    case TokKind::kComma:
      return "','";
    case TokKind::kSemi:
      return "';'";
    case TokKind::kEof:
      return "end of input";
  }
  return "?";
}

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<Token> lex(std::string_view src, support::DiagnosticEngine& diags) {
  std::vector<Token> out;
  std::uint32_t line = 1, col = 1;
  std::size_t i = 0;

  auto loc = [&] { return support::SourceLoc{line, col}; };
  auto advance = [&](std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) {
      if (src[i + k] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    i += n;
  };

  while (i < src.size()) {
    const char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    if (c == '#') {  // line comment
      std::size_t n = 0;
      while (i + n < src.size() && src[i + n] != '\n') ++n;
      advance(n);
      continue;
    }

    Token t;
    t.loc = loc();

    auto single = [&](TokKind k) {
      t.kind = k;
      t.text = src.substr(i, 1);
      advance(1);
      out.push_back(t);
    };

    switch (c) {
      case '{':
        single(TokKind::kLBrace);
        continue;
      case '}':
        single(TokKind::kRBrace);
        continue;
      case '(':
        single(TokKind::kLParen);
        continue;
      case ')':
        single(TokKind::kRParen);
        continue;
      case ',':
        single(TokKind::kComma);
        continue;
      case ';':
        single(TokKind::kSemi);
        continue;
      default:
        break;
    }

    if (ident_start(c)) {
      std::size_t n = 1;
      while (i + n < src.size() && ident_char(src[i + n])) ++n;
      t.kind = TokKind::kIdent;
      t.text = src.substr(i, n);
      advance(n);
      out.push_back(t);
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < src.size() && std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::size_t n = (c == '-') ? 1 : 0;
      bool is_float = false;
      while (i + n < src.size() &&
             (std::isdigit(static_cast<unsigned char>(src[i + n])) || src[i + n] == '.' ||
              src[i + n] == 'e' || src[i + n] == 'E' ||
              ((src[i + n] == '+' || src[i + n] == '-') && n > 0 &&
               (src[i + n - 1] == 'e' || src[i + n - 1] == 'E')))) {
        if (src[i + n] == '.' || src[i + n] == 'e' || src[i + n] == 'E') is_float = true;
        ++n;
      }
      t.text = src.substr(i, n);
      if (is_float) {
        t.kind = TokKind::kFloat;
        if (!support::parse_double(t.text, t.float_value)) {
          diags.error("malformed float literal '" + std::string(t.text) + "'", t.loc);
          t.float_value = 0;
        }
      } else {
        t.kind = TokKind::kInt;
        if (!support::parse_int(t.text, t.int_value)) {
          diags.error("malformed or overflowing integer literal '" + std::string(t.text) + "'",
                      t.loc);
          t.int_value = 0;
        }
      }
      advance(n);
      out.push_back(t);
      continue;
    }

    diags.error(std::string("unexpected character '") + c + "'", t.loc);
    advance(1);
  }

  Token eof;
  eof.kind = TokKind::kEof;
  eof.loc = loc();
  out.push_back(eof);
  return out;
}

}  // namespace partita::frontend

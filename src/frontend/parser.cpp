#include "frontend/parser.hpp"

#include <string>
#include <vector>

#include "frontend/lexer.hpp"

namespace partita::frontend {

namespace {

class Parser {
 public:
  Parser(std::vector<Token> toks, support::DiagnosticEngine& diags)
      : toks_(std::move(toks)), diags_(diags) {}

  std::optional<ir::Module> run() {
    if (!expect_keyword("module")) return std::nullopt;
    const Token* name = expect(TokKind::kIdent, "module name");
    if (!name) return std::nullopt;
    module_.emplace(std::string(name->text));
    if (!expect(TokKind::kSemi, "';' after module name")) return std::nullopt;

    scan_declarations();
    if (diags_.has_errors()) return std::nullopt;

    while (!at(TokKind::kEof)) {
      if (peek_keyword("func")) {
        if (!parse_func()) return std::nullopt;
      } else if (peek_keyword("entry")) {
        next();  // 'entry'
        const Token* ent = expect(TokKind::kIdent, "entry function name");
        if (!ent) return std::nullopt;
        const ir::FuncId f = module_->find_function(ent->text);
        if (!f.valid()) {
          error("unknown entry function '" + std::string(ent->text) + "'", ent->loc);
          return std::nullopt;
        }
        module_->set_entry(f);
        if (!expect(TokKind::kSemi, "';' after entry")) return std::nullopt;
      } else {
        error("expected 'func' or 'entry'", cur().loc);
        return std::nullopt;
      }
    }

    if (!module_->entry().valid()) {
      const ir::FuncId main_fn = module_->find_function("main");
      if (!main_fn.valid()) {
        error("no 'entry' directive and no function named 'main'", cur().loc);
        return std::nullopt;
      }
      module_->set_entry(main_fn);
    }
    return std::move(module_);
  }

 private:
  // --- token helpers -------------------------------------------------------

  const Token& cur() const { return toks_[pos_]; }
  const Token& next() { return toks_[pos_++]; }
  bool at(TokKind k) const { return cur().kind == k; }
  bool peek_keyword(std::string_view kw) const {
    return cur().kind == TokKind::kIdent && cur().text == kw;
  }

  bool accept_keyword(std::string_view kw) {
    if (!peek_keyword(kw)) return false;
    next();
    return true;
  }

  bool expect_keyword(std::string_view kw) {
    if (accept_keyword(kw)) return true;
    error("expected '" + std::string(kw) + "'", cur().loc);
    return false;
  }

  const Token* expect(TokKind k, std::string_view what) {
    if (cur().kind == k) return &next();
    error("expected " + std::string(what) + ", found " + std::string(to_string(cur().kind)),
          cur().loc);
    return nullptr;
  }

  void error(std::string msg, support::SourceLoc loc) { diags_.error(std::move(msg), loc); }

  // --- pass 1: declaration scan -------------------------------------------

  /// Pre-creates every function so call statements may reference functions
  /// defined later in the file.
  void scan_declarations() {
    const std::size_t save = pos_;
    int depth = 0;
    while (!at(TokKind::kEof)) {
      const Token& t = next();
      if (t.kind == TokKind::kLBrace) ++depth;
      else if (t.kind == TokKind::kRBrace) --depth;
      else if (depth == 0 && t.kind == TokKind::kIdent && t.text == "func") {
        if (cur().kind == TokKind::kIdent) {
          if (module_->find_function(cur().text).valid()) {
            error("duplicate function '" + std::string(cur().text) + "'", cur().loc);
          } else {
            module_->create_function(std::string(cur().text));
          }
        }
      }
    }
    pos_ = save;
  }

  // --- pass 2: bodies ------------------------------------------------------

  bool parse_func() {
    next();  // 'func'
    const Token* name = expect(TokKind::kIdent, "function name");
    if (!name) return false;
    const ir::FuncId fid = module_->find_function(name->text);
    if (!fid.valid()) return false;  // duplicate reported in pass 1
    ir::Function& fn = module_->function(fid);

    while (true) {
      if (accept_keyword("scall")) {
        fn.set_ip_mappable(true);
      } else if (accept_keyword("sw_cycles")) {
        const Token* n = expect(TokKind::kInt, "cycle count after sw_cycles");
        if (!n) return false;
        fn.set_declared_sw_cycles(n->int_value);
      } else {
        break;
      }
    }

    if (at(TokKind::kSemi)) {  // leaf declaration
      next();
      return true;
    }
    if (!expect(TokKind::kLBrace, "'{' or ';' after function header")) return false;
    std::vector<ir::StmtId> body;
    if (!parse_stmt_seq(fn, body)) return false;
    fn.body() = std::move(body);
    return true;
  }

  bool parse_stmt_seq(ir::Function& fn, std::vector<ir::StmtId>& out) {
    while (!at(TokKind::kRBrace)) {
      if (at(TokKind::kEof)) {
        error("unexpected end of input inside '{...}'", cur().loc);
        return false;
      }
      ir::StmtId id;
      if (!parse_stmt(fn, id)) return false;
      out.push_back(id);
    }
    next();  // '}'
    return true;
  }

  bool parse_rw_lists(ir::Stmt& s) {
    while (peek_keyword("reads") || peek_keyword("writes")) {
      const bool is_reads = cur().text == "reads";
      next();
      if (!expect(TokKind::kLParen, "'(' after reads/writes")) return false;
      while (true) {
        const Token* sym = expect(TokKind::kIdent, "symbol name");
        if (!sym) return false;
        const ir::SymbolId sid = module_->intern_symbol(sym->text);
        (is_reads ? s.reads : s.writes).push_back(sid);
        if (at(TokKind::kComma)) {
          next();
          continue;
        }
        break;
      }
      if (!expect(TokKind::kRParen, "')' after symbol list")) return false;
    }
    return true;
  }

  bool parse_stmt(ir::Function& fn, ir::StmtId& out) {
    if (accept_keyword("seg")) {
      ir::Stmt s;
      s.kind = ir::StmtKind::kSeg;
      if (at(TokKind::kIdent) && !peek_keyword("reads") && !peek_keyword("writes")) {
        s.label = std::string(next().text);
      }
      const Token* n = expect(TokKind::kInt, "segment cycle count");
      if (!n) return false;
      s.cycles = n->int_value;
      if (!parse_rw_lists(s)) return false;
      if (!expect(TokKind::kSemi, "';' after seg")) return false;
      out = fn.add_stmt(std::move(s));
      return true;
    }

    if (accept_keyword("call")) {
      const Token* callee = expect(TokKind::kIdent, "callee name");
      if (!callee) return false;
      const ir::FuncId target = module_->find_function(callee->text);
      if (!target.valid()) {
        error("call to unknown function '" + std::string(callee->text) + "'", callee->loc);
        return false;
      }
      ir::Stmt s;
      s.kind = ir::StmtKind::kCall;
      s.callee = target;
      if (!parse_rw_lists(s)) return false;
      if (!expect(TokKind::kSemi, "';' after call")) return false;
      out = fn.add_stmt(std::move(s));
      module_->register_call_site(fn.id(), out, target);
      return true;
    }

    if (accept_keyword("if")) {
      ir::Stmt s;
      s.kind = ir::StmtKind::kIf;
      if (accept_keyword("prob")) {
        if (at(TokKind::kFloat)) {
          s.taken_prob = next().float_value;
        } else if (at(TokKind::kInt)) {
          s.taken_prob = static_cast<double>(next().int_value);
        } else {
          error("expected probability after 'prob'", cur().loc);
          return false;
        }
        if (s.taken_prob < 0.0 || s.taken_prob > 1.0) {
          error("probability must be within [0,1]", cur().loc);
          return false;
        }
      }
      if (!expect(TokKind::kLBrace, "'{' after if")) return false;
      if (!parse_stmt_seq(fn, s.then_stmts)) return false;
      if (accept_keyword("else")) {
        if (!expect(TokKind::kLBrace, "'{' after else")) return false;
        if (!parse_stmt_seq(fn, s.else_stmts)) return false;
      }
      out = fn.add_stmt(std::move(s));
      return true;
    }

    if (accept_keyword("loop")) {
      ir::Stmt s;
      s.kind = ir::StmtKind::kLoop;
      const Token* n = expect(TokKind::kInt, "loop trip count");
      if (!n) return false;
      s.trip_count = n->int_value;
      if (s.trip_count < 1) {
        error("loop trip count must be >= 1", n->loc);
        return false;
      }
      if (!expect(TokKind::kLBrace, "'{' after loop")) return false;
      if (!parse_stmt_seq(fn, s.body_stmts)) return false;
      out = fn.add_stmt(std::move(s));
      return true;
    }

    error("expected a statement (seg/call/if/loop)", cur().loc);
    return false;
  }

  std::vector<Token> toks_;
  support::DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  std::optional<ir::Module> module_;
};

}  // namespace

std::optional<ir::Module> parse_module(std::string_view source,
                                       support::DiagnosticEngine& diags) {
  std::vector<Token> toks = lex(source, diags);
  if (diags.has_errors()) return std::nullopt;
  return Parser(std::move(toks), diags).run();
}

}  // namespace partita::frontend

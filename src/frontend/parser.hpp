// Parser for the kernel language (KL).
//
// Grammar (EBNF; '#' comments, identifiers are C-like):
//
//   module_file := "module" IDENT ";" item* ["entry" IDENT ";"]
//   item        := "func" IDENT attrs (";" | "{" stmt* "}")
//   attrs       := ["scall"] ["sw_cycles" INT]
//   stmt        := seg | call | if | loop
//   seg         := "seg" [IDENT] INT rw* ";"
//   call        := "call" IDENT rw* ";"
//   if          := "if" ["prob" NUMBER] "{" stmt* "}" ["else" "{" stmt* "}"]
//   loop        := "loop" INT "{" stmt* "}"
//   rw          := ("reads"|"writes") "(" IDENT ("," IDENT)* ")"
//
// Functions may be referenced before their definition: parsing is two-pass
// (declaration scan, then bodies). The `entry` directive defaults to a
// function named "main" when omitted.
#pragma once

#include <optional>
#include <string_view>

#include "ir/function.hpp"
#include "support/diagnostics.hpp"

namespace partita::frontend {

/// Parses a KL module. Returns nullopt (and diagnostics) on any error.
std::optional<ir::Module> parse_module(std::string_view source,
                                       support::DiagnosticEngine& diags);

}  // namespace partita::frontend

#include "support/clock.hpp"

#include <chrono>
#include <thread>

namespace partita::support {

namespace {

class SystemClock final : public Clock {
 public:
  std::int64_t now_micros() override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void sleep_micros(std::int64_t micros) override {
    if (micros <= 0) return;
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
};

}  // namespace

Clock& Clock::system() {
  static SystemClock clock;
  return clock;
}

}  // namespace partita::support

// ASCII table renderer used by the benchmark harness to print paper-style
// result tables (Tables 1-3 of the DAC'99 paper).
#pragma once

#include <string>
#include <vector>

namespace partita::support {

/// Column alignment inside a TextTable.
enum class Align { kLeft, kRight };

/// Builds fixed-width ASCII tables:
///
///   TextTable t({"RG", "G", "A"});
///   t.add_row({"47740", "115037", "3"});
///   std::cout << t.render();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Sets per-column alignment; default is left for all columns.
  void set_alignment(std::vector<Align> align);

  /// Appends one row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with a header rule, e.g.
  ///   RG     | G      | A
  ///   -------+--------+---
  ///   47740  | 115037 | 3
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<Align> align_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace partita::support

#include "support/fault_injection.hpp"

namespace partita::support {

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(std::string_view site, std::uint64_t trip_at) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    sites_.emplace(std::string(site), Site{trip_at, 0});
    armed_count_.fetch_add(1, std::memory_order_relaxed);
  } else {
    it->second = Site{trip_at, 0};
  }
}

void FaultInjector::disarm(std::string_view site) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return;
  sites_.erase(it);
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> g(mu_);
  sites_.clear();
  armed_count_.store(0, std::memory_order_relaxed);
}

bool FaultInjector::should_trip(std::string_view site) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return false;
  ++it->second.hits;
  return it->second.hits >= it->second.trip_at;
}

std::uint64_t FaultInjector::hits(std::string_view site) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

}  // namespace partita::support

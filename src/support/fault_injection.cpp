#include "support/fault_injection.hpp"

#include <signal.h>
#include <unistd.h>

namespace partita::support {

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(std::string_view site, std::uint64_t trip_at, bool sticky,
                        bool crash) {
  auto fresh = std::make_shared<Site>();
  fresh->trip_at = trip_at == 0 ? 1 : trip_at;
  fresh->sticky = sticky;
  fresh->crash = crash;
  std::lock_guard<std::mutex> g(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    sites_.emplace(std::string(site), std::move(fresh));
    armed_count_.fetch_add(1, std::memory_order_relaxed);
  } else {
    it->second = std::move(fresh);  // re-arm: fresh counters
  }
}

void FaultInjector::disarm(std::string_view site) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return;
  sites_.erase(it);
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> g(mu_);
  sites_.clear();
  armed_count_.store(0, std::memory_order_relaxed);
}

bool FaultInjector::should_trip(std::string_view site) {
  std::shared_ptr<Site> s;
  {
    std::lock_guard<std::mutex> g(mu_);
    auto it = sites_.find(site);
    if (it == sites_.end()) return false;
    s = it->second;
  }
  // Every checkpoint is counted -- hits() reports true traffic even after a
  // sticky trip, and concurrent calls never lose a hit (single fetch_add).
  const std::uint64_t n = s->hits.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (s->tripped.load(std::memory_order_acquire)) return true;
  if (n == s->trip_at) {
    // Exactly one thread performs this transition.
    if (s->sticky) s->tripped.store(true, std::memory_order_release);
    if (s->crash) {
      // Simulated power loss: no flushing, no destructors, no exit codes.
      ::kill(::getpid(), SIGKILL);
    }
    return true;
  }
  if (n > s->trip_at) return s->sticky;
  return false;
}

std::uint64_t FaultInjector::hits(std::string_view site) const {
  std::shared_ptr<Site> s;
  {
    std::lock_guard<std::mutex> g(mu_);
    auto it = sites_.find(site);
    if (it == sites_.end()) return 0;
    s = it->second;
  }
  return s->hits.load(std::memory_order_acquire);
}

}  // namespace partita::support

#include "support/strings.hpp"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace partita::support {

namespace {
bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }
}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && is_space(s[b])) ++b;
  std::size_t e = s.size();
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i) out += sep;
    out += pieces[i];
  }
  return out;
}

bool is_integer(std::string_view s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

bool parse_int(std::string_view s, std::int64_t& out) {
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

bool parse_double(std::string_view s, double& out) {
  if (s.empty()) return false;
  // std::from_chars for double is unreliable across toolchains; use strtod on
  // a NUL-terminated copy.
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  out = std::strtod(buf.c_str(), &end);
  return errno == 0 && end == buf.c_str() + buf.size();
}

std::string with_commas(std::int64_t n) {
  const bool neg = n < 0;
  std::string digits = std::to_string(neg ? -n : n);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  if (neg) out += '-';
  return {out.rbegin(), out.rend()};
}

std::string compact_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace partita::support

// Deterministic pseudo-random number generation.
//
// Workload generators and property tests need runs that are reproducible
// across platforms and standard-library versions, so we implement
// xoshiro256** (Blackman & Vigna) instead of relying on std::mt19937 plus
// libstdc++ distribution internals.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace partita::support {

/// xoshiro256** 1.0 generator with SplitMix64 seeding.
///
/// Satisfies the UniformRandomBitGenerator concept, but the helper members
/// below should be preferred: they are deterministic across platforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Next raw 64-bit output.
  std::uint64_t operator()();

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli draw with probability p of returning true.
  bool chance(double p);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffles v in place.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.empty()) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i)));
      using std::swap;
      swap(v[i], v[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace partita::support

// Durable-file primitives shared by the write-ahead journal and the B&B
// checkpoint writer: CRC-framed records and crash-safe file replacement.
//
// Frame layout (little-endian, 12-byte header + payload):
//
//   u32 magic      0x504A4C31 ("PJL1")
//   u32 length     payload byte count
//   u32 crc32      CRC-32 (IEEE, reflected) of the payload bytes
//   u8  payload[length]
//
// decode_frame is a total function: any prefix of a valid stream decodes to
// kNeedMore, anything else (bad magic, implausible length, CRC mismatch) to
// kCorrupt with zero bytes consumed, so a reader can salvage every frame up
// to the first torn or bit-flipped one and stop cleanly -- the exact
// behaviour journal recovery needs on a tail that died mid-append.
//
// write_file_atomic is the classic tmp + fsync + rename + fsync(dir)
// sequence: after it returns true the new content is durable and a crash at
// any point leaves either the old file or the new one, never a mix.
// AppendFile is an O_APPEND writer whose append() optionally fsyncs before
// returning -- the journal's append-before-acknowledge primitive.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace partita::support::io {

/// CRC-32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF) -- the zlib
/// polynomial, table-driven, no external dependency.
std::uint32_t crc32(const void* data, std::size_t size);

constexpr std::uint32_t kFrameMagic = 0x504A4C31u;  // "PJL1"
constexpr std::size_t kFrameHeaderBytes = 12;
/// Upper bound on a single frame payload; a decoded length beyond this is
/// treated as corruption rather than an allocation request.
constexpr std::uint32_t kMaxFramePayload = 64u << 20;

/// Appends one framed record to `out`.
void encode_frame(const std::string& payload, std::string* out);

enum class FrameStatus {
  kOk,        // one frame decoded; *consumed advanced past it
  kNeedMore,  // `data` is a (possibly empty) prefix of a valid frame
  kCorrupt,   // bad magic, implausible length, or CRC mismatch
};

/// Decodes one frame from data[offset..). On kOk sets *payload and
/// *consumed (bytes of this frame, header included). Total: never throws.
FrameStatus decode_frame(const std::string& data, std::size_t offset,
                         std::string* payload, std::size_t* consumed);

/// Splits a byte stream into frames, stopping at the first torn/corrupt
/// one. Returns decoded payloads; *dropped_bytes gets the length of the
/// undecodable suffix (0 when the stream was fully consumed).
std::vector<std::string> decode_frames(const std::string& data,
                                       std::size_t* dropped_bytes);

/// Reads a whole file. Returns false (and leaves *out unspecified) when the
/// file cannot be opened or read.
bool read_file(const std::string& path, std::string* out);

/// Writes `data` to `path` via tmp + fsync + rename(2) + fsync of the
/// containing directory. Atomic with respect to crashes: readers see the
/// old content or the new, never a torn mix.
bool write_file_atomic(const std::string& path, const std::string& data,
                       bool sync = true);

/// Regular-file names (not paths) inside `dir`, sorted. Empty on error.
std::vector<std::string> list_dir(const std::string& dir);

/// mkdir -p. True when the directory exists afterwards.
bool make_dirs(const std::string& dir);

bool remove_file(const std::string& path);

/// Append-mode writer with optional per-append fsync -- the journal's
/// durability primitive. One writer per file; not thread-safe.
class AppendFile {
 public:
  AppendFile() = default;
  ~AppendFile();
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  /// Opens (creating if absent) for appending. Closes any previous file.
  bool open(const std::string& path);
  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Appends `data`; when `sync`, fsyncs before returning so the bytes are
  /// durable once this call succeeds.
  bool append(const std::string& data, bool sync);
  /// Explicit fsync (used to batch several unsynced appends).
  bool sync();
  void close();

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace partita::support::io

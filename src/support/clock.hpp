// Injectable monotonic clock.
//
// Everything in the repo that reads wall-clock time for a *decision* --
// ResourceBudget deadline checks in the branch & bound, retry backoff in the
// solve service -- goes through this interface instead of
// std::chrono::steady_clock directly. Production uses Clock::system();
// robustness tests substitute a FakeClock so deadline expiry and backoff
// sequences are asserted deterministically, with zero real sleeps and zero
// flaky timing margins. (Pure observability timers -- SolverStats seconds --
// intentionally keep reading the real clock: they report, they never decide.)
#pragma once

#include <atomic>
#include <cstdint>

namespace partita::support {

class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic timestamp in microseconds. Only differences are meaningful.
  virtual std::int64_t now_micros() = 0;

  /// Blocks the calling thread for `micros` (used by retry backoff). A fake
  /// clock advances its own time instead of sleeping for real.
  virtual void sleep_micros(std::int64_t micros) = 0;

  /// The steady_clock-backed process-wide default.
  static Clock& system();
};

/// Manually-driven clock for tests: time only moves via advance_micros() or
/// a sleep_micros() call (which completes instantly and records how long it
/// "slept"). All operations are thread-safe.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(std::int64_t start_micros = 0) : now_(start_micros) {}

  std::int64_t now_micros() override {
    return now_.load(std::memory_order_acquire);
  }

  void sleep_micros(std::int64_t micros) override {
    if (micros <= 0) return;
    now_.fetch_add(micros, std::memory_order_acq_rel);
    slept_.fetch_add(micros, std::memory_order_acq_rel);
  }

  void advance_micros(std::int64_t micros) {
    now_.fetch_add(micros, std::memory_order_acq_rel);
  }

  /// Total time "slept" through sleep_micros -- what a real clock would have
  /// blocked for. Lets tests assert an exact backoff sequence.
  std::int64_t slept_micros() const {
    return slept_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::int64_t> now_;
  std::atomic<std::int64_t> slept_{0};
};

}  // namespace partita::support

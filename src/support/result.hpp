// Structured fallibility for user-input-reachable paths.
//
// Library stages that can fail on *user input* (a module that does not
// verify, an inconsistent IP library, an over-budget solve) return
// Result<T> instead of asserting: the caller gets either the value or an
// Error carrying a summary line plus the full diagnostic list, and decides
// how to render it (CLI exit code, JSON field, test expectation).
// PARTITA_ASSERT remains reserved for internal invariants that no input can
// reach.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "support/assert.hpp"
#include "support/diagnostics.hpp"

namespace partita::support {

/// Failure taxonomy consumed by retry logic (support::RetryPolicy) and the
/// solve service's request lifecycle:
///   kPermanent -- the same input will fail the same way (parse error, failed
///                 verification, inconsistent library); never retried.
///   kTransient -- environmental (allocation failure, an injected transient
///                 fault, an escaped exception); worth re-running, typically
///                 on a lower degradation rung.
///   kCancelled -- the caller asked for the operation to stop; not a defect,
///                 never retried.
enum class ErrorKind : std::uint8_t { kPermanent, kTransient, kCancelled };

/// Display name: "permanent", "transient", "cancelled".
inline const char* to_string(ErrorKind k) {
  switch (k) {
    case ErrorKind::kPermanent: return "permanent";
    case ErrorKind::kTransient: return "transient";
    case ErrorKind::kCancelled: return "cancelled";
  }
  return "?";
}

/// A failed operation: one summary line plus the diagnostics that explain it.
struct Error {
  std::string message;
  std::vector<Diagnostic> diagnostics;
  ErrorKind kind = ErrorKind::kPermanent;

  /// Builds an error that adopts every diagnostic collected so far.
  static Error from(std::string message, const DiagnosticEngine& diags) {
    return Error{std::move(message), diags.diagnostics()};
  }

  static Error transient(std::string message) {
    return Error{std::move(message), {}, ErrorKind::kTransient};
  }

  static Error cancelled(std::string message) {
    return Error{std::move(message), {}, ErrorKind::kCancelled};
  }

  /// "message" followed by one rendered diagnostic per line.
  std::string render() const {
    std::string out = message;
    for (const Diagnostic& d : diagnostics) {
      out += '\n';
      out += "  ";
      out += d.render();
    }
    return out;
  }
};

/// Either a T or an Error. Implicitly constructible from both so fallible
/// functions can `return value;` and `return Error{...};` symmetrically.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  T& value() {
    PARTITA_ASSERT_MSG(ok(), "Result::value() on an error");
    return *value_;
  }
  const T& value() const {
    PARTITA_ASSERT_MSG(ok(), "Result::value() on an error");
    return *value_;
  }
  /// Moves the value out (the Result is left valueless).
  T take() {
    PARTITA_ASSERT_MSG(ok(), "Result::take() on an error");
    return std::move(*value_);
  }

  const Error& error() const {
    PARTITA_ASSERT_MSG(!ok(), "Result::error() on a success");
    return *error_;
  }

 private:
  std::optional<T> value_;
  std::optional<Error> error_;
};

}  // namespace partita::support

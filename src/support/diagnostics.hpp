// Diagnostic reporting for the Partita tool chain.
//
// Front-end and analysis passes do not throw on user-input errors; they emit
// Diagnostics into a DiagnosticEngine so a driver can report *all* problems in
// one run (the usual compiler UX). Internal invariant violations still use
// PARTITA_ASSERT.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace partita::support {

/// Severity of a diagnostic message.
enum class Severity : std::uint8_t {
  kNote,
  kWarning,
  kError,
};

/// Converts a severity to its display name ("note", "warning", "error").
std::string_view to_string(Severity s);

/// A location inside a kernel-language source buffer (1-based line/column).
struct SourceLoc {
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  bool valid() const { return line != 0; }
  bool operator==(const SourceLoc&) const = default;
};

/// One diagnostic message, optionally attached to a source location.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string message;
  SourceLoc loc;

  /// Renders as "error at 3:7: message" or "error: message".
  std::string render() const;
};

/// Collects diagnostics emitted by a pass; cheap to pass by reference.
class DiagnosticEngine {
 public:
  void note(std::string message, SourceLoc loc = {});
  void warning(std::string message, SourceLoc loc = {});
  void error(std::string message, SourceLoc loc = {});

  bool has_errors() const { return error_count_ > 0; }
  std::size_t error_count() const { return error_count_; }
  std::size_t warning_count() const { return warning_count_; }
  const std::vector<Diagnostic>& diagnostics() const { return diags_; }

  /// Renders every diagnostic, one per line.
  std::string render_all() const;

  /// Drops all collected diagnostics and resets the counters.
  void clear();

 private:
  std::vector<Diagnostic> diags_;
  std::size_t error_count_ = 0;
  std::size_t warning_count_ = 0;
};

}  // namespace partita::support

// Small string utilities shared across the tool chain.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace partita::support {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits on a single character; empty fields are kept.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Splits on any run of ASCII whitespace; empty fields are dropped.
std::vector<std::string_view> split_ws(std::string_view s);

/// Joins the pieces with the given separator.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

/// True if s consists of one or more decimal digits (optionally '-' first).
bool is_integer(std::string_view s);

/// Parses a decimal integer; returns false on malformed input or overflow.
bool parse_int(std::string_view s, std::int64_t& out);

/// Parses a floating-point literal; returns false on malformed input.
bool parse_double(std::string_view s, double& out);

/// Formats n with thousands separators, e.g. 1234567 -> "1,234,567".
std::string with_commas(std::int64_t n);

/// Formats a double trimming trailing zeros, e.g. 3.50 -> "3.5", 3.0 -> "3".
std::string compact_double(double v);

}  // namespace partita::support

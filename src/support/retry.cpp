#include "support/retry.hpp"

#include <algorithm>
#include <cmath>

namespace partita::support {

namespace {

/// splitmix64: a full-period mixer, so consecutive attempt numbers yield
/// uncorrelated jitter factors from the same seed.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::int64_t RetryPolicy::backoff_micros(int attempt) const {
  if (attempt < 1 || base_backoff_micros <= 0) return 0;
  double backoff = static_cast<double>(base_backoff_micros) *
                   std::pow(std::max(1.0, multiplier), attempt - 1);
  backoff = std::min(backoff, static_cast<double>(max_backoff_micros));
  if (jitter > 0.0) {
    const std::uint64_t h = mix64(jitter_seed ^ static_cast<std::uint64_t>(attempt));
    const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
    backoff *= 1.0 + jitter * (2.0 * unit - 1.0);
  }
  return static_cast<std::int64_t>(std::llround(std::max(0.0, backoff)));
}

}  // namespace partita::support

// Lightweight assertion macros for internal invariants.
//
// PARTITA_ASSERT is active in all build types (the library is an offline
// design tool; correctness beats the last few percent of speed), and prints
// the failing expression together with an optional message before aborting.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace partita::support {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "partita: assertion `%s` failed at %s:%d%s%s\n", expr, file, line,
               msg ? ": " : "", msg ? msg : "");
  std::abort();
}

}  // namespace partita::support

#define PARTITA_ASSERT(expr)                                                      \
  ((expr) ? static_cast<void>(0)                                                  \
          : ::partita::support::assert_fail(#expr, __FILE__, __LINE__, nullptr))

#define PARTITA_ASSERT_MSG(expr, msg)                                             \
  ((expr) ? static_cast<void>(0)                                                  \
          : ::partita::support::assert_fail(#expr, __FILE__, __LINE__, (msg)))

#define PARTITA_UNREACHABLE(msg)                                                  \
  ::partita::support::assert_fail("unreachable", __FILE__, __LINE__, (msg))

#include "support/diagnostics.hpp"

#include <sstream>

namespace partita::support {

std::string_view to_string(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::render() const {
  std::ostringstream os;
  os << to_string(severity);
  if (loc.valid()) {
    os << " at " << loc.line << ':' << loc.column;
  }
  os << ": " << message;
  return os.str();
}

void DiagnosticEngine::note(std::string message, SourceLoc loc) {
  diags_.push_back({Severity::kNote, std::move(message), loc});
}

void DiagnosticEngine::warning(std::string message, SourceLoc loc) {
  diags_.push_back({Severity::kWarning, std::move(message), loc});
  ++warning_count_;
}

void DiagnosticEngine::error(std::string message, SourceLoc loc) {
  diags_.push_back({Severity::kError, std::move(message), loc});
  ++error_count_;
}

std::string DiagnosticEngine::render_all() const {
  std::ostringstream os;
  for (const Diagnostic& d : diags_) {
    os << d.render() << '\n';
  }
  return os.str();
}

void DiagnosticEngine::clear() {
  diags_.clear();
  error_count_ = 0;
  warning_count_ = 0;
}

}  // namespace partita::support

#include "support/io.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace partita::support::io {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void put_u32(std::string* out, std::uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

std::uint32_t get_u32(const std::string& data, std::size_t at) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(data[at])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(data[at + 1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(data[at + 2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(data[at + 3])) << 24;
}

/// Directory of `path` ("." when it has no slash), for post-rename fsync.
std::string dir_of(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

bool fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void encode_frame(const std::string& payload, std::string* out) {
  put_u32(out, kFrameMagic);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(payload.data(), payload.size()));
  out->append(payload);
}

FrameStatus decode_frame(const std::string& data, std::size_t offset,
                         std::string* payload, std::size_t* consumed) {
  if (offset >= data.size()) return FrameStatus::kNeedMore;
  const std::size_t avail = data.size() - offset;
  if (avail < kFrameHeaderBytes) {
    // A short header is only "need more" while it still prefixes the magic;
    // otherwise it is garbage and salvage should stop here.
    for (std::size_t i = 0; i < std::min<std::size_t>(avail, 4); ++i) {
      const std::uint32_t expect = (kFrameMagic >> (8 * i)) & 0xFF;
      if (static_cast<unsigned char>(data[offset + i]) != expect) {
        return FrameStatus::kCorrupt;
      }
    }
    return FrameStatus::kNeedMore;
  }
  if (get_u32(data, offset) != kFrameMagic) return FrameStatus::kCorrupt;
  const std::uint32_t length = get_u32(data, offset + 4);
  if (length > kMaxFramePayload) return FrameStatus::kCorrupt;
  if (avail < kFrameHeaderBytes + length) return FrameStatus::kNeedMore;
  const std::uint32_t want_crc = get_u32(data, offset + 8);
  const char* body = data.data() + offset + kFrameHeaderBytes;
  if (crc32(body, length) != want_crc) return FrameStatus::kCorrupt;
  payload->assign(body, length);
  *consumed = kFrameHeaderBytes + length;
  return FrameStatus::kOk;
}

std::vector<std::string> decode_frames(const std::string& data,
                                       std::size_t* dropped_bytes) {
  std::vector<std::string> out;
  std::size_t at = 0;
  while (at < data.size()) {
    std::string payload;
    std::size_t consumed = 0;
    const FrameStatus st = decode_frame(data, at, &payload, &consumed);
    if (st != FrameStatus::kOk) break;
    out.push_back(std::move(payload));
    at += consumed;
  }
  if (dropped_bytes) *dropped_bytes = data.size() - at;
  return out;
}

bool read_file(const std::string& path, std::string* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  out->clear();
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out->append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return true;
}

bool write_file_atomic(const std::string& path, const std::string& data,
                       bool sync) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  bool ok = write_all(fd, data.data(), data.size());
  if (ok && sync) ok = ::fsync(fd) == 0;
  ok = (::close(fd) == 0) && ok;
  if (!ok) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (sync) fsync_dir(dir_of(path));
  return true;
}

std::vector<std::string> list_dir(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (!d) return names;
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    struct stat st {};
    if (::stat((dir + "/" + name).c_str(), &st) != 0) continue;
    if (!S_ISREG(st.st_mode)) continue;
    names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

bool make_dirs(const std::string& dir) {
  if (dir.empty()) return false;
  std::string partial;
  std::size_t at = 0;
  while (at <= dir.size()) {
    const std::size_t slash = dir.find('/', at);
    partial = slash == std::string::npos ? dir : dir.substr(0, slash);
    if (!partial.empty() && partial != "/") {
      if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) return false;
    }
    if (slash == std::string::npos) break;
    at = slash + 1;
  }
  struct stat st {};
  return ::stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

bool remove_file(const std::string& path) { return ::unlink(path.c_str()) == 0; }

AppendFile::~AppendFile() { close(); }

bool AppendFile::open(const std::string& path) {
  close();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) return false;
  path_ = path;
  return true;
}

bool AppendFile::append(const std::string& data, bool sync) {
  if (fd_ < 0) return false;
  if (!write_all(fd_, data.data(), data.size())) return false;
  return !sync || ::fsync(fd_) == 0;
}

bool AppendFile::sync() { return fd_ >= 0 && ::fsync(fd_) == 0; }

void AppendFile::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  path_.clear();
}

}  // namespace partita::support::io

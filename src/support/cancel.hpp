// Cooperative cancellation.
//
// A CancelSource owns a shared flag; every CancelToken handed out from it
// observes cancel() immediately (release/acquire). The token is threaded into
// ilp::ResourceBudget and consulted only at branch & bound *wave boundaries*,
// so cancelling a running solve never interrupts a lane mid-LP: the request
// terminates within one wave of the cancel becoming visible, which bounds
// cancellation latency by `threads` node LPs of `lp.max_iterations` pivots.
//
// Tokens are cheap value types (one shared_ptr); a default-constructed token
// can never be cancelled, so budget checks cost one branch when no caller
// asked for cancellability.
#pragma once

#include <atomic>
#include <memory>

namespace partita::support {

class CancelSource;

class CancelToken {
 public:
  /// A token that can never be cancelled (the disengaged default).
  CancelToken() = default;

  bool cancelled() const {
    return flag_ && flag_->load(std::memory_order_acquire);
  }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
};

class CancelSource {
 public:
  CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  CancelToken token() const { return CancelToken(flag_); }

  /// Sticky: once cancelled, every token stays cancelled forever.
  void cancel() { flag_->store(true, std::memory_order_release); }

  bool cancelled() const { return flag_->load(std::memory_order_acquire); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace partita::support

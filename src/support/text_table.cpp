#include "support/text_table.hpp"

#include <algorithm>
#include <sstream>

#include "support/assert.hpp"

namespace partita::support {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  PARTITA_ASSERT(!header_.empty());
  align_.assign(header_.size(), Align::kLeft);
}

void TextTable::set_alignment(std::vector<Align> align) {
  PARTITA_ASSERT(align.size() == header_.size());
  align_ = std::move(align);
}

void TextTable::add_row(std::vector<std::string> row) {
  PARTITA_ASSERT_MSG(row.size() == header_.size(), "row width mismatch");
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto emit_cell = [&](std::ostringstream& os, const std::string& cell, std::size_t c) {
    const std::size_t pad = width[c] - cell.size();
    if (align_[c] == Align::kRight) os << std::string(pad, ' ') << cell;
    else os << cell << std::string(pad, ' ');
  };

  std::ostringstream os;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) os << " | ";
    emit_cell(os, header_[c], c);
  }
  os << '\n';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) os << "-+-";
    os << std::string(width[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << " | ";
      emit_cell(os, row[c], c);
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace partita::support

// Deterministic, test-only fault injection.
//
// Recovery paths -- deadline expiry, arena allocation failure, basis
// refactorization failure -- normally fire only under wall-clock or memory
// pressure, which makes them untestable by luck. The FaultInjector lets a
// test arm a named *site* to trip at its Nth checkpoint: production code
// asks `fault_should_trip("site")` at each checkpoint and gets `true` from
// the Nth call on (sticky, like a real expired deadline), so every recovery
// path runs reproducibly in ctest.
//
// Thread safety: site registration (arm/disarm/reset) takes a mutex; hit
// counting is a single fetch_add on an atomic per-site counter, and the
// sticky state is an atomic flag. Concurrent should_trip calls from the
// solve-service worker pool therefore never lose a hit, exactly one call
// observes the trip transition, and once a sticky site trips *every* thread
// sees it tripped from then on -- which is what makes soak tests with armed
// sites deterministic in their invariants (though not in which request
// trips). The disarmed fast path is one relaxed atomic load; with nothing
// armed the hooks cost nothing measurable.
//
// For a deterministic trip *position* across thread counts, arm
// multi-threaded sites with trip_at = 1 (every check trips) and reserve
// trip_at > 1 for sites checked on a single thread (wave boundaries, arena
// allocation).
//
// Sites currently wired:
//   "ilp.deadline"         wave-boundary deadline check in branch & bound
//   "ilp.node_arena"       node-arena allocation in branch & bound
//   "simplex.warm_refactor" basis import/refactorization in solve_warm
//   "select.objective_skew" drops interface areas from the selection
//                          objective (oracle/shrinker divergence demo)
//   "service.transient"    injected transient failure in the solve service
//                          worker (exercises RetryPolicy + quarantine)
//   "journal.append"       write-ahead journal admit append (durability)
//   "journal.trim"         terminal-state trim append in the journal
//   "checkpoint.write"     B&B checkpoint file write at a wave boundary
//
// Crash mode (`crasher`): arming a site with crash = true turns its trip
// into a SIGKILL of the whole process -- no atexit handlers, no flushing,
// the closest deterministic stand-in for power loss. The kill-and-recover
// harness arms crash sites around the journal/checkpoint writes to prove
// recovery replays every acknowledged request.
//
// The CLI additionally arms one site from the PARTITA_FAULT=site[:n[:crash]]
// environment variable (tools/partita_cli.cpp, tools/partita_served.cpp,
// tools/partita_serve.cpp), so ctest can exercise the degraded exit path --
// and the crash-recovery path -- end to end.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace partita::support {

class FaultInjector {
 public:
  static FaultInjector& instance();

  /// Arms `site`. Sticky (default): the trip_at-th call to should_trip
  /// (1-based) and every call after it return true, like a real expired
  /// deadline. Non-sticky: *only* the trip_at-th call returns true -- a
  /// one-shot transient fault that subsequent retries recover from.
  /// Re-arming resets the hit count. With `crash`, a trip SIGKILLs the
  /// process instead of returning true (simulated power loss).
  void arm(std::string_view site, std::uint64_t trip_at = 1, bool sticky = true,
           bool crash = false);
  void disarm(std::string_view site);
  /// Disarms every site and clears all hit counts.
  void reset();

  /// Checkpoint: counts a hit against `site` and reports whether the fault
  /// fires. Unarmed sites never fire (and are not counted).
  bool should_trip(std::string_view site);

  /// Checkpoints counted against `site` since it was (re-)armed.
  std::uint64_t hits(std::string_view site) const;

 private:
  struct Site {
    std::uint64_t trip_at = 1;
    bool sticky = true;
    bool crash = false;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<bool> tripped{false};
  };

  // Sites are shared_ptr so should_trip can count outside the registration
  // lock (and survive a concurrent disarm).
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Site>, std::less<>> sites_;
  std::atomic<int> armed_count_{0};

  friend bool fault_should_trip(std::string_view site);
};

/// Production-side hook: false immediately (one relaxed load) when nothing
/// is armed anywhere.
inline bool fault_should_trip(std::string_view site) {
  FaultInjector& fi = FaultInjector::instance();
  if (fi.armed_count_.load(std::memory_order_relaxed) == 0) return false;
  return fi.should_trip(site);
}

/// RAII arming for tests: arms on construction, disarms on destruction.
class ScopedFault {
 public:
  explicit ScopedFault(std::string_view site, std::uint64_t trip_at = 1,
                       bool sticky = true)
      : site_(site) {
    FaultInjector::instance().arm(site_, trip_at, sticky);
  }
  ~ScopedFault() { FaultInjector::instance().disarm(site_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  std::string site_;
};

}  // namespace partita::support

// Retry with exponential backoff and deterministic seeded jitter.
//
// The solve service re-runs requests that failed at a *transient* fault site
// (ErrorKind::kTransient); permanent and cancelled errors are never retried.
// Backoff grows geometrically per attempt and is scattered by a jitter factor
// derived purely from (jitter_seed, attempt) -- no global RNG, no wall clock
// -- so a fixed seed reproduces the exact backoff sequence in tests, while
// distinct per-request seeds de-correlate retries under load.
#pragma once

#include <cstdint>

#include "support/result.hpp"

namespace partita::support {

struct RetryPolicy {
  /// Total attempts including the first; <= 1 disables retries.
  int max_attempts = 3;
  /// Backoff before retry k (k >= 1, after the k-th failed attempt) is
  /// base * multiplier^(k-1), clamped to max, then jittered.
  std::int64_t base_backoff_micros = 2000;
  double multiplier = 2.0;
  std::int64_t max_backoff_micros = 250000;
  /// Uniform jitter in [1 - jitter, 1 + jitter]; 0 disables.
  double jitter = 0.25;
  std::uint64_t jitter_seed = 0;

  /// Deterministic backoff before retry `attempt` (1-based count of failed
  /// attempts so far). Pure in (policy, attempt).
  std::int64_t backoff_micros(int attempt) const;

  /// True when a failure of kind e.kind after `attempts_done` attempts
  /// should be re-run: only transient errors, only below the attempt cap.
  bool should_retry(const Error& e, int attempts_done) const {
    return attempts_done < max_attempts && e.kind == ErrorKind::kTransient;
  }
};

}  // namespace partita::support

#include "support/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace partita::support::json {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  std::optional<Value> parse(std::string* error) {
    std::optional<Value> v = value();
    skip_ws();
    if (v && pos_ != s_.size()) {
      fail("trailing characters");
      v.reset();
    }
    if (!v && error) *error = error_;
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  bool fail(const std::string& why) {
    if (error_.empty()) error_ = why + " at offset " + std::to_string(pos_);
    return false;
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }
  bool literal(const char* word) {
    for (const char* p = word; *p; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return fail("bad literal");
    }
    return true;
  }

  std::optional<Value> value() {
    if (++depth_ > kMaxDepth) {
      fail("nesting too deep");
      --depth_;
      return std::nullopt;
    }
    std::optional<Value> out = value_inner();
    --depth_;
    return out;
  }

  std::optional<Value> value_inner() {
    skip_ws();
    if (pos_ >= s_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = s_[pos_];
    Value out;
    switch (c) {
      case '{': {
        auto obj = std::make_shared<Object>();
        ++pos_;
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == '}') {
          ++pos_;
        } else {
          while (true) {
            std::optional<std::string> key = string();
            if (!key) return std::nullopt;
            if (!consume(':')) return std::nullopt;
            std::optional<Value> val = value();
            if (!val) return std::nullopt;
            (*obj)[*key] = *val;
            skip_ws();
            if (pos_ < s_.size() && s_[pos_] == ',') {
              ++pos_;
              continue;
            }
            if (!consume('}')) return std::nullopt;
            break;
          }
        }
        out.v = obj;
        return out;
      }
      case '[': {
        auto arr = std::make_shared<Array>();
        ++pos_;
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == ']') {
          ++pos_;
        } else {
          while (true) {
            std::optional<Value> val = value();
            if (!val) return std::nullopt;
            arr->push_back(*val);
            skip_ws();
            if (pos_ < s_.size() && s_[pos_] == ',') {
              ++pos_;
              continue;
            }
            if (!consume(']')) return std::nullopt;
            break;
          }
        }
        out.v = arr;
        return out;
      }
      case '"': {
        std::optional<std::string> str = string();
        if (!str) return std::nullopt;
        out.v = *str;
        return out;
      }
      case 't':
        if (!literal("true")) return std::nullopt;
        out.v = true;
        return out;
      case 'f':
        if (!literal("false")) return std::nullopt;
        out.v = false;
        return out;
      case 'n':
        if (!literal("null")) return std::nullopt;
        out.v = nullptr;
        return out;
      default: {
        const std::size_t start = pos_;
        if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '-' || s_[pos_] == '+')) {
          ++pos_;
        }
        if (pos_ == start) {
          fail("unexpected character");
          return std::nullopt;
        }
        out.v = std::strtod(s_.c_str() + start, nullptr);
        return out;
      }
    }
  }

  std::optional<std::string> string() {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      fail("expected string");
      return std::nullopt;
    }
    ++pos_;
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) break;
        const char esc = s_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'u': {
            // 4-hex-digit escape; code points above 0xFF (which quote()
            // never emits) degrade to '?'.
            unsigned cp = 0;
            for (int k = 0; k < 4 && pos_ < s_.size(); ++k) {
              const char h = s_[pos_++];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            }
            c = cp <= 0xFF ? static_cast<char>(cp) : '?';
            break;
          }
          default: c = esc; break;  // \" \\ \/ and anything else verbatim
        }
      }
      out.push_back(c);
    }
    if (pos_ >= s_.size()) {
      fail("unterminated string");
      return std::nullopt;
    }
    ++pos_;  // closing quote
    return out;
  }

  // Recursion guard: each nesting level costs real stack; attacker-shaped
  // input ("[[[[[...") must not be able to overflow it.
  static constexpr int kMaxDepth = 96;

  const std::string& s_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

std::optional<Value> parse(const std::string& text, std::string* error) {
  return Parser(text).parse(error);
}

double num_or(const Object& o, const char* key, double fallback) {
  auto it = o.find(key);
  if (it == o.end() || !it->second.is_number()) return fallback;
  return it->second.number();
}

std::int64_t int_or(const Object& o, const char* key, std::int64_t fallback) {
  return static_cast<std::int64_t>(num_or(o, key, static_cast<double>(fallback)));
}

bool bool_or(const Object& o, const char* key, bool fallback) {
  auto it = o.find(key);
  if (it == o.end() || !it->second.is_bool()) return fallback;
  return it->second.boolean();
}

std::string string_or(const Object& o, const char* key, const std::string& fallback) {
  auto it = o.find(key);
  if (it == o.end() || !it->second.is_string()) return fallback;
  return it->second.string();
}

const Object* object_or_null(const Object& o, const char* key) {
  auto it = o.find(key);
  if (it == o.end() || !it->second.is_object()) return nullptr;
  return &it->second.object();
}

const Array* array_or_null(const Object& o, const char* key) {
  auto it = o.find(key);
  if (it == o.end() || !it->second.is_array()) return nullptr;
  return &it->second.array();
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace partita::support::json

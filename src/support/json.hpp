// Minimal JSON value, parser and writer helpers.
//
// One JSON implementation serves every subsystem that speaks JSON text: the
// oracle fixture format (partita-oracle-fixture-v1), the wire protocol
// (partita-wire-v1) and the bench trajectory records (partita-bench-v1).
// It is deliberately small: objects, arrays, strings (escapes \" \\ \/ \n
// \t), numbers, true/false/null -- the subset those formats use. Numbers are
// doubles; fmt_double prints them with %.17g so they round-trip exactly.
//
// The parser is a total function over arbitrary bytes: malformed input
// yields std::nullopt plus a one-line reason, never a crash -- the wire
// server feeds it attacker-controlled payloads.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace partita::support::json {

struct Value;
using Object = std::map<std::string, Value>;
using Array = std::vector<Value>;

struct Value {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<Array>, std::shared_ptr<Object>>
      v = nullptr;

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v); }
  bool is_bool() const { return std::holds_alternative<bool>(v); }
  bool is_number() const { return std::holds_alternative<double>(v); }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  bool is_object() const { return std::holds_alternative<std::shared_ptr<Object>>(v); }
  bool is_array() const { return std::holds_alternative<std::shared_ptr<Array>>(v); }

  const Object& object() const { return *std::get<std::shared_ptr<Object>>(v); }
  const Array& array() const { return *std::get<std::shared_ptr<Array>>(v); }
  double number() const { return std::get<double>(v); }
  bool boolean() const { return std::get<bool>(v); }
  const std::string& string() const { return std::get<std::string>(v); }
};

/// Parses a complete JSON document (trailing non-whitespace is an error).
/// On failure returns nullopt and, when `error` is non-null, a one-line
/// reason with the byte offset.
std::optional<Value> parse(const std::string& text, std::string* error = nullptr);

// --- field extraction (missing key or wrong type -> fallback) --------------

double num_or(const Object& o, const char* key, double fallback);
std::int64_t int_or(const Object& o, const char* key, std::int64_t fallback);
bool bool_or(const Object& o, const char* key, bool fallback);
std::string string_or(const Object& o, const char* key, const std::string& fallback);
/// Null when the key is missing or not an object/array.
const Object* object_or_null(const Object& o, const char* key);
const Array* array_or_null(const Object& o, const char* key);

// --- writer helpers --------------------------------------------------------

/// Shortest representation that round-trips a double exactly (%.17g).
std::string fmt_double(double v);

/// JSON string literal, quotes included; escapes ", \, control chars, \n \t.
std::string quote(const std::string& s);

}  // namespace partita::support::json

#include "support/rng.hpp"

#include "support/assert.hpp"

namespace partita::support {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  PARTITA_ASSERT(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::uniform01() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

bool Rng::chance(double p) { return uniform01() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    PARTITA_ASSERT(w >= 0);
    total += w;
  }
  PARTITA_ASSERT_MSG(total > 0, "weighted_index needs a positive weight");
  double draw = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0) return i;
  }
  return weights.size() - 1;  // numeric edge: fell off the end
}

}  // namespace partita::support

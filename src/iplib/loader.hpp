// Text loader for IP libraries.
//
// Format (one `ip` block per IP; '#' comments):
//
//   ip IP12 {
//     area 3
//     ports in 2 out 2
//     rate in 4 out 4
//     latency 8
//     pipelined            # or: combinational
//     protocol sync        # sync | handshake | stream
//     fn fir cycles 2000 in 64 out 64
//     fn iir cycles 0 in 64 out 64   # cycles 0 => derived estimate
//   }
#pragma once

#include <optional>
#include <string_view>

#include "iplib/library.hpp"
#include "support/diagnostics.hpp"

namespace partita::iplib {

/// Parses the textual library format. Returns nullopt (plus diagnostics) on
/// any error.
std::optional<IpLibrary> load_library(std::string_view text,
                                      support::DiagnosticEngine& diags);

/// Serializes a library back into loader syntax (round-trips through
/// load_library).
std::string save_library(const IpLibrary& lib);

}  // namespace partita::iplib

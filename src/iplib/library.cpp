#include "iplib/library.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace partita::iplib {

IpId IpLibrary::add(IpDescriptor ip) {
  // invariant: user-supplied descriptors are validated (and diagnosed) by
  // iplib::load_library before reaching add(); programmatic callers must
  // uphold the same contract.
  PARTITA_ASSERT_MSG(by_name_.find(ip.name) == by_name_.end(), "duplicate IP name");
  PARTITA_ASSERT_MSG(!ip.functions.empty(), "IP must implement at least one function");
  PARTITA_ASSERT_MSG(ip.in_ports >= 1 && ip.out_ports >= 1, "IP needs ports");
  PARTITA_ASSERT_MSG(ip.in_rate >= 1 && ip.out_rate >= 1, "rates are >= 1 cycle");
  const IpId id{static_cast<std::uint32_t>(ips_.size())};
  ip.id = id;
  by_name_.emplace(ip.name, id);
  ips_.push_back(std::move(ip));
  return id;
}

IpId IpLibrary::find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? IpId{} : it->second;
}

std::vector<Implementor> IpLibrary::implementors_of(std::string_view function) const {
  std::vector<Implementor> out;
  for (const IpDescriptor& ip : ips_) {
    if (const IpFunction* f = ip.find_function(function)) {
      out.push_back({ip.id, f});
    }
  }
  return out;
}

std::vector<std::string> IpLibrary::supported_functions() const {
  std::vector<std::string> out;
  for (const IpDescriptor& ip : ips_) {
    for (const IpFunction& f : ip.functions) {
      if (std::find(out.begin(), out.end(), f.function) == out.end()) {
        out.push_back(f.function);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace partita::iplib

// IP block descriptors.
//
// An IP is characterized exactly by the properties Section 3 of the paper
// feeds into interface selection: number of in/out ports, input/output data
// rates, latency, pipelining, silicon area, the communication protocol its
// pins speak (transformed to the kernel's synchronous standard by the
// protocol transformer), and the set of functions it can execute. An IP with
// one function is an S-IP, with several an M-IP (Definition 2).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

namespace partita::iplib {

/// Identifies an IP inside an IpLibrary.
struct IpId {
  std::uint32_t value = std::numeric_limits<std::uint32_t>::max();
  bool valid() const { return value != std::numeric_limits<std::uint32_t>::max(); }
  bool operator==(const IpId&) const = default;
  auto operator<=>(const IpId&) const = default;
};

/// Native protocol of the IP's pins. The interface's protocol transformer
/// converts anything to the kernel-standard synchronous protocol; exotic
/// protocols cost extra transformer area (see iface::protocol_transformer_area).
enum class Protocol : std::uint8_t {
  kSynchronous,   // already the kernel standard
  kHandshake,     // req/ack asynchronous handshake
  kStream,        // free-running valid-qualified stream
};

std::string_view to_string(Protocol p);

/// One function an IP can execute.
struct IpFunction {
  /// Name of the application function this entry implements (matches
  /// ir::Function::name of an s-call candidate).
  std::string function;
  /// Execution time of the IP for one call of the function (the paper's
  /// T_IP), in kernel clock cycles at the IP's native rate.
  std::int64_t ip_cycles = 0;
  /// Number of input operands / output results one call transfers.
  std::int64_t n_in = 0;
  std::int64_t n_out = 0;
};

/// A reusable hardware block.
struct IpDescriptor {
  IpId id{};
  std::string name;
  std::vector<IpFunction> functions;

  std::int32_t in_ports = 1;
  std::int32_t out_ports = 1;
  /// Clock cycles between successive input (output) data items the IP can
  /// accept (produce). Rates below 4 exceed what the type-0 software
  /// template can feed and force a slowed IP clock (Section 3, Type 0).
  std::int32_t in_rate = 4;
  std::int32_t out_rate = 4;
  /// Input-to-first-output latency in cycles.
  std::int32_t latency = 0;
  bool pipelined = true;
  /// Relative silicon area (the paper's dimensionless area units).
  double area = 0.0;
  /// Active power draw while the IP runs (relative units; the paper's IMP
  /// records carry "area, power and performance gain").
  double power = 0.0;
  Protocol protocol = Protocol::kSynchronous;

  bool is_multi_function() const { return functions.size() > 1; }

  /// Finds the function entry by name; nullptr if this IP cannot execute it.
  const IpFunction* find_function(std::string_view fn) const;

  /// T_IP for one call of `f`: the declared cycle count, or, when declared as
  /// 0, the pipelined-streaming estimate latency + max(n_in*in_rate,
  /// n_out*out_rate).
  std::int64_t execution_cycles(const IpFunction& f) const;
};

}  // namespace partita::iplib

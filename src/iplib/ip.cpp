#include "iplib/ip.hpp"

#include <algorithm>

namespace partita::iplib {

std::string_view to_string(Protocol p) {
  switch (p) {
    case Protocol::kSynchronous:
      return "sync";
    case Protocol::kHandshake:
      return "handshake";
    case Protocol::kStream:
      return "stream";
  }
  return "?";
}

const IpFunction* IpDescriptor::find_function(std::string_view fn) const {
  auto it = std::find_if(functions.begin(), functions.end(),
                         [&](const IpFunction& f) { return f.function == fn; });
  return it == functions.end() ? nullptr : &*it;
}

std::int64_t IpDescriptor::execution_cycles(const IpFunction& f) const {
  if (f.ip_cycles > 0) return f.ip_cycles;
  const std::int64_t in_time = f.n_in * in_rate;
  const std::int64_t out_time = f.n_out * out_rate;
  return latency + std::max(in_time, out_time);
}

}  // namespace partita::iplib

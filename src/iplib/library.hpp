// The IP library: the pool of reusable blocks the selector may instantiate.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "iplib/ip.hpp"

namespace partita::iplib {

/// A (IP, function-entry) pair: one way of executing one application function
/// in hardware.
struct Implementor {
  IpId ip;
  const IpFunction* function = nullptr;
};

class IpLibrary {
 public:
  /// Adds a descriptor; the name must be unique. Returns the assigned id.
  IpId add(IpDescriptor ip);

  const IpDescriptor& ip(IpId id) const { return ips_[id.value]; }
  std::size_t size() const { return ips_.size(); }
  const std::vector<IpDescriptor>& all() const { return ips_; }

  /// Finds an IP by name; invalid id if absent.
  IpId find(std::string_view name) const;

  /// Every IP (with the matching function entry) able to execute `function`.
  std::vector<Implementor> implementors_of(std::string_view function) const;

  /// Names of all application functions at least one IP can execute.
  std::vector<std::string> supported_functions() const;

 private:
  std::vector<IpDescriptor> ips_;
  std::unordered_map<std::string, IpId> by_name_;
};

}  // namespace partita::iplib

#include "iplib/loader.hpp"

#include <sstream>

#include "support/strings.hpp"

namespace partita::iplib {

namespace {

using support::split_ws;
using support::SourceLoc;

class Loader {
 public:
  Loader(std::string_view text, support::DiagnosticEngine& diags)
      : diags_(diags) {
    for (std::string_view line : support::split(text, '\n')) {
      const auto hash = line.find('#');
      if (hash != std::string_view::npos) line = line.substr(0, hash);
      lines_.push_back(support::trim(line));
    }
  }

  std::optional<IpLibrary> run() {
    IpLibrary lib;
    std::size_t i = 0;
    while (i < lines_.size()) {
      if (lines_[i].empty()) {
        ++i;
        continue;
      }
      auto toks = split_ws(lines_[i]);
      if (toks.size() != 3 || toks[0] != "ip" || toks[2] != "{") {
        error(i, "expected 'ip <name> {'");
        return std::nullopt;
      }
      IpDescriptor ip;
      ip.name = std::string(toks[1]);
      ++i;
      if (!parse_body(ip, i)) return std::nullopt;
      if (ip.functions.empty()) {
        error(i, "ip '" + ip.name + "' declares no functions");
        return std::nullopt;
      }
      if (lib.find(ip.name).valid()) {
        error(i, "duplicate ip name '" + ip.name + "'");
        return std::nullopt;
      }
      lib.add(std::move(ip));
    }
    return lib;
  }

 private:
  void error(std::size_t line_idx, std::string msg) {
    diags_.error(std::move(msg), SourceLoc{static_cast<std::uint32_t>(line_idx + 1), 1});
  }

  bool parse_i64(std::size_t i, std::string_view tok, std::int64_t& out) {
    if (!support::parse_int(tok, out)) {
      error(i, "expected integer, found '" + std::string(tok) + "'");
      return false;
    }
    return true;
  }

  bool parse_body(IpDescriptor& ip, std::size_t& i) {
    for (; i < lines_.size(); ++i) {
      if (lines_[i].empty()) continue;
      if (lines_[i] == "}") {
        ++i;
        return true;
      }
      auto t = split_ws(lines_[i]);
      const std::string_view key = t[0];

      if (key == "area" && t.size() == 2) {
        double a = 0;
        if (!support::parse_double(t[1], a) || a < 0) {
          error(i, "bad area");
          return false;
        }
        ip.area = a;
      } else if (key == "power" && t.size() == 2) {
        double pw = 0;
        if (!support::parse_double(t[1], pw) || pw < 0) {
          error(i, "bad power");
          return false;
        }
        ip.power = pw;
      } else if (key == "ports" && t.size() == 5 && t[1] == "in" && t[3] == "out") {
        std::int64_t pin = 0, pout = 0;
        if (!parse_i64(i, t[2], pin) || !parse_i64(i, t[4], pout)) return false;
        if (pin < 1 || pout < 1) {
          error(i, "ports must be >= 1");
          return false;
        }
        ip.in_ports = static_cast<std::int32_t>(pin);
        ip.out_ports = static_cast<std::int32_t>(pout);
      } else if (key == "rate" && t.size() == 5 && t[1] == "in" && t[3] == "out") {
        std::int64_t rin = 0, rout = 0;
        if (!parse_i64(i, t[2], rin) || !parse_i64(i, t[4], rout)) return false;
        if (rin < 1 || rout < 1) {
          error(i, "rates must be >= 1");
          return false;
        }
        ip.in_rate = static_cast<std::int32_t>(rin);
        ip.out_rate = static_cast<std::int32_t>(rout);
      } else if (key == "latency" && t.size() == 2) {
        std::int64_t lat = 0;
        if (!parse_i64(i, t[1], lat) || lat < 0) {
          error(i, "bad latency");
          return false;
        }
        ip.latency = static_cast<std::int32_t>(lat);
      } else if (key == "pipelined" && t.size() == 1) {
        ip.pipelined = true;
      } else if (key == "combinational" && t.size() == 1) {
        ip.pipelined = false;
      } else if (key == "protocol" && t.size() == 2) {
        if (t[1] == "sync") ip.protocol = Protocol::kSynchronous;
        else if (t[1] == "handshake") ip.protocol = Protocol::kHandshake;
        else if (t[1] == "stream") ip.protocol = Protocol::kStream;
        else {
          error(i, "unknown protocol '" + std::string(t[1]) + "'");
          return false;
        }
      } else if (key == "fn" && t.size() == 8 && t[2] == "cycles" && t[4] == "in" &&
                 t[6] == "out") {
        IpFunction f;
        f.function = std::string(t[1]);
        std::int64_t cyc = 0, nin = 0, nout = 0;
        if (!parse_i64(i, t[3], cyc) || !parse_i64(i, t[5], nin) || !parse_i64(i, t[7], nout)) {
          return false;
        }
        if (cyc < 0 || nin < 0 || nout < 0) {
          error(i, "fn values must be non-negative");
          return false;
        }
        f.ip_cycles = cyc;
        f.n_in = nin;
        f.n_out = nout;
        ip.functions.push_back(std::move(f));
      } else {
        error(i, "unrecognized line '" + std::string(lines_[i]) + "'");
        return false;
      }
    }
    error(i, "missing '}' at end of ip block");
    return false;
  }

  support::DiagnosticEngine& diags_;
  std::vector<std::string_view> lines_;
};

}  // namespace

std::optional<IpLibrary> load_library(std::string_view text,
                                      support::DiagnosticEngine& diags) {
  return Loader(text, diags).run();
}

std::string save_library(const IpLibrary& lib) {
  std::ostringstream os;
  for (const IpDescriptor& ip : lib.all()) {
    os << "ip " << ip.name << " {\n";
    os << "  area " << support::compact_double(ip.area) << '\n';
    if (ip.power > 0) os << "  power " << support::compact_double(ip.power) << '\n';
    os << "  ports in " << ip.in_ports << " out " << ip.out_ports << '\n';
    os << "  rate in " << ip.in_rate << " out " << ip.out_rate << '\n';
    os << "  latency " << ip.latency << '\n';
    os << (ip.pipelined ? "  pipelined\n" : "  combinational\n");
    os << "  protocol " << to_string(ip.protocol) << '\n';
    for (const IpFunction& f : ip.functions) {
      os << "  fn " << f.function << " cycles " << f.ip_cycles << " in " << f.n_in
         << " out " << f.n_out << '\n';
    }
    os << "}\n";
  }
  return os.str();
}

}  // namespace partita::iplib

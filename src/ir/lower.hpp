// Lowering from the statement IR to MOP lists.
//
// The paper's flow transforms the C application into a MOP list before any
// instruction matching happens. Our frontend produces the statement IR; this
// pass expands every statement into micro-operations:
//
//   seg N      -> N micro-words of a realistic DSP mix (dual loads + MAC,
//                 stores + ALU, plain ALU), so the packed schedule of the
//                 segment is exactly N cycles;
//   call f     -> one kCall MOP;
//   if         -> kCmp + kBranchIf + then-arm + kBranch + else-arm;
//   loop N     -> loop-control MOPs + one body expansion (trip counts stay in
//                 the statement/profile level; the simulator re-executes the
//                 body range N times).
#pragma once

#include <unordered_map>
#include <utility>
#include <vector>

#include "ir/function.hpp"
#include "ir/mop.hpp"

namespace partita::ir {

/// Half-open range of MOP indices belonging to one statement.
struct MopRange {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  std::uint32_t size() const { return end - begin; }
};

/// Lowering result for one function.
struct LoweredFunction {
  FuncId func;
  MopList mops;
  /// Statement -> the contiguous MOP range lowered from it (control
  /// statements cover their whole sub-tree).
  std::unordered_map<StmtId, MopRange> stmt_range;
  /// Packed micro-word schedule length of one straight-line pass.
  std::size_t schedule_cycles = 0;
};

/// Lowering result for a whole module, indexed by FuncId value.
struct LoweredModule {
  std::vector<LoweredFunction> functions;

  const LoweredFunction& of(FuncId f) const { return functions[f.value()]; }
};

/// Lowers every function of the module. The module must verify cleanly.
LoweredModule lower_module(const Module& module);

/// Lowers a single function.
LoweredFunction lower_function(const Module& module, const Function& fn);

}  // namespace partita::ir

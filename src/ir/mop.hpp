// MOP-level IR: the micro-operation list the Partita kernel executes.
//
// The target ASIP (Section 2 of the paper) is a pipelined, micro-programmed
// DSP core with a separate address-generation unit and two data memories
// (XDM / YDM) that can be accessed in the same cycle. A micro-code word has
// eight fields so that an arithmetic operation, two memory moves, two AGU
// updates and sequencing can be issued together; each field's operation is a
// MOP (micro-operation).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ir/ids.hpp"

namespace partita::ir {

/// Which data memory a memory MOP touches.
enum class Memory : std::uint8_t { kX, kY };

std::string_view to_string(Memory m);

/// Micro-operation opcodes. The set mirrors a 1990s fixed-point DSP kernel:
/// single-cycle ALU/MAC ops, register moves, dual-memory loads/stores, AGU
/// updates, and sequencing. `kCall` marks a (possibly s-call) function call;
/// `kIpDispatch` is emitted when an s-call has been turned into an
/// S-instruction and is executed by an IP through an interface.
enum class MopKind : std::uint8_t {
  kNop,
  kAdd,
  kSub,
  kMul,
  kMac,    // multiply-accumulate
  kShift,  // arithmetic shift
  kAnd,
  kOr,
  kXor,
  kCmp,
  kMove,    // register-to-register move
  kConst,   // load immediate
  kLoad,    // memory -> register (X or Y)
  kStore,   // register -> memory (X or Y)
  kAguAdd,  // address-generation-unit pointer update
  kBranch,  // unconditional branch (block-local sequencing)
  kBranchIf,
  kCall,
  kReturn,
  kIpDispatch,  // S-instruction entry point (handled by an interface)
};

std::string_view to_string(MopKind k);

/// Static properties of each MopKind.
struct MopInfo {
  std::string_view name;
  bool is_memory = false;      // touches XDM/YDM
  bool is_control = false;     // branch/call/return
  bool is_arith = false;       // uses the ALU/MAC datapath
  std::uint8_t base_cycles = 1;
};

const MopInfo& mop_info(MopKind k);

/// A register operand (the kernel has a flat general-register file).
struct Reg {
  std::uint16_t index = 0;
  bool operator==(const Reg&) const = default;
};

/// One micro-operation.
///
/// Operand encoding is deliberately simple: up to two register sources, one
/// register destination, an optional memory reference (memory + symbolic
/// base), and an optional immediate. Calls carry the callee FuncId and the
/// module-wide CallSiteId of the occurrence.
struct Mop {
  MopKind kind = MopKind::kNop;
  Reg dst{};
  Reg src0{};
  Reg src1{};
  std::optional<Memory> mem;       // for kLoad/kStore/kAguAdd
  SymbolId mem_symbol;             // symbolic base address, if is_memory
  std::int32_t imm = 0;            // for kConst / kShift amounts / AGU strides
  FuncId callee;                   // for kCall / kIpDispatch
  CallSiteId call_site;            // for kCall / kIpDispatch
  StmtId origin;                   // statement this MOP was lowered from

  bool is_memory() const { return mop_info(kind).is_memory; }
  bool is_control() const { return mop_info(kind).is_control; }
};

/// Field slots of the 8-field micro-code word (Section 2).
enum class UField : std::uint8_t {
  kAlu,      // arithmetic operation
  kMul,      // multiplier / MAC
  kMoveX,    // move / load / store on the X memory port
  kMoveY,    // move / load / store on the Y memory port
  kAguX,     // X address generation
  kAguY,     // Y address generation
  kSeq,      // sequencer (branch targets, loop counters)
  kMisc,     // flags, IP start strobes
};

inline constexpr std::size_t kNumUFields = 8;

std::string_view to_string(UField f);

/// One packed micro-code word: up to eight MOPs issued in a single cycle.
/// Unused fields hold invalid MopIds.
struct MicroWord {
  std::array<MopId, kNumUFields> field{};

  bool empty() const {
    for (const MopId& m : field) {
      if (m.valid()) return false;
    }
    return true;
  }
  std::size_t occupancy() const {
    std::size_t n = 0;
    for (const MopId& m : field) n += m.valid() ? 1 : 0;
    return n;
  }
};

/// A flat list of MOPs plus an optional micro-word schedule over them.
class MopList {
 public:
  MopId add(Mop m) {
    const MopId id{static_cast<std::uint32_t>(mops_.size())};
    mops_.push_back(std::move(m));
    return id;
  }

  const Mop& operator[](MopId id) const { return mops_[id.value()]; }
  Mop& operator[](MopId id) { return mops_[id.value()]; }

  std::size_t size() const { return mops_.size(); }
  bool empty() const { return mops_.empty(); }

  const std::vector<Mop>& mops() const { return mops_; }

  /// The packed schedule, if pack_schedule() was run (one entry per cycle).
  const std::vector<MicroWord>& schedule() const { return schedule_; }

  /// Greedily packs the MOP list into micro-words respecting field classes:
  /// at most one ALU/MAC op, one X-port move, one Y-port move, one AGU update
  /// per memory, and one sequencing op per cycle. Control MOPs terminate a
  /// word. Returns the schedule length in cycles.
  std::size_t pack_schedule();

 private:
  std::vector<Mop> mops_;
  std::vector<MicroWord> schedule_;
};

/// Which micro-word field a MOP occupies.
UField field_for(const Mop& m);

}  // namespace partita::ir

// Statement-level IR.
//
// The selection algorithm of the paper works on the structure of the
// application: function calls that could become S-instructions (s-calls),
// straight-line code segments between them, conditional branches that create
// distinct execution paths, and loops that scale profile frequencies. The
// statement IR captures exactly that; lower.cpp expands it into a MOP list
// when cycle-accurate material is needed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/ids.hpp"

namespace partita::ir {

enum class StmtKind : std::uint8_t {
  kSeg,   // straight-line code segment with a known software cycle count
  kCall,  // call to another function (an s-call if callee is IP-mappable)
  kIf,    // two-armed conditional: creates execution paths
  kLoop,  // counted loop: multiplies execution frequency of its body
};

std::string_view to_string(StmtKind k);

/// One statement. A tagged struct rather than a class hierarchy: the IR is
/// data, passes are free functions, and a flat arena keeps ids stable.
struct Stmt {
  StmtKind kind = StmtKind::kSeg;

  /// Optional label for diagnostics and table printing (e.g. "win_filter").
  std::string label;

  // --- kSeg ---
  /// Software execution cycles of the segment (one execution).
  std::int64_t cycles = 0;

  // --- kCall ---
  FuncId callee;
  /// Module-unique id of this static call occurrence; assigned by Module.
  CallSiteId call_site;

  // --- kIf ---
  std::vector<StmtId> then_stmts;
  std::vector<StmtId> else_stmts;
  /// Profile probability of taking the then-arm, in [0,1].
  double taken_prob = 0.5;

  // --- kLoop ---
  std::vector<StmtId> body_stmts;
  /// Typical trip count from the sample-execution profile.
  std::int64_t trip_count = 1;

  // --- data dependence (kSeg / kCall) ---
  /// Symbols read / written; the CDFG derives dependence edges from these.
  std::vector<SymbolId> reads;
  std::vector<SymbolId> writes;
};

}  // namespace partita::ir

#include "ir/mop.hpp"

#include "support/assert.hpp"

namespace partita::ir {

std::string_view to_string(Memory m) { return m == Memory::kX ? "X" : "Y"; }

namespace {

// Indexed by MopKind; keep in sync with the enum.
constexpr MopInfo kMopInfo[] = {
    /* kNop        */ {"nop", false, false, false, 1},
    /* kAdd        */ {"add", false, false, true, 1},
    /* kSub        */ {"sub", false, false, true, 1},
    /* kMul        */ {"mul", false, false, true, 1},
    /* kMac        */ {"mac", false, false, true, 1},
    /* kShift      */ {"shift", false, false, true, 1},
    /* kAnd        */ {"and", false, false, true, 1},
    /* kOr         */ {"or", false, false, true, 1},
    /* kXor        */ {"xor", false, false, true, 1},
    /* kCmp        */ {"cmp", false, false, true, 1},
    /* kMove       */ {"move", false, false, false, 1},
    /* kConst      */ {"const", false, false, false, 1},
    /* kLoad       */ {"load", true, false, false, 1},
    /* kStore      */ {"store", true, false, false, 1},
    /* kAguAdd     */ {"agu_add", false, false, false, 1},
    /* kBranch     */ {"br", false, true, false, 1},
    /* kBranchIf   */ {"br_if", false, true, false, 1},
    /* kCall       */ {"call", false, true, false, 1},
    /* kReturn     */ {"ret", false, true, false, 1},
    /* kIpDispatch */ {"ip_dispatch", false, true, false, 1},
};

}  // namespace

std::string_view to_string(MopKind k) { return mop_info(k).name; }

const MopInfo& mop_info(MopKind k) {
  const auto idx = static_cast<std::size_t>(k);
  PARTITA_ASSERT(idx < std::size(kMopInfo));
  return kMopInfo[idx];
}

std::string_view to_string(UField f) {
  switch (f) {
    case UField::kAlu:
      return "alu";
    case UField::kMul:
      return "mul";
    case UField::kMoveX:
      return "move_x";
    case UField::kMoveY:
      return "move_y";
    case UField::kAguX:
      return "agu_x";
    case UField::kAguY:
      return "agu_y";
    case UField::kSeq:
      return "seq";
    case UField::kMisc:
      return "misc";
  }
  return "?";
}

UField field_for(const Mop& m) {
  switch (m.kind) {
    case MopKind::kMul:
    case MopKind::kMac:
      return UField::kMul;
    case MopKind::kAdd:
    case MopKind::kSub:
    case MopKind::kShift:
    case MopKind::kAnd:
    case MopKind::kOr:
    case MopKind::kXor:
    case MopKind::kCmp:
      return UField::kAlu;
    case MopKind::kLoad:
    case MopKind::kStore:
      PARTITA_ASSERT(m.mem.has_value());
      return *m.mem == Memory::kX ? UField::kMoveX : UField::kMoveY;
    case MopKind::kAguAdd:
      PARTITA_ASSERT(m.mem.has_value());
      return *m.mem == Memory::kX ? UField::kAguX : UField::kAguY;
    case MopKind::kMove:
    case MopKind::kConst:
      // Register moves ride the X move port by convention; the packer will
      // fall back to the Y port if X is busy.
      return UField::kMoveX;
    case MopKind::kBranch:
    case MopKind::kBranchIf:
    case MopKind::kCall:
    case MopKind::kReturn:
    case MopKind::kIpDispatch:
      return UField::kSeq;
    case MopKind::kNop:
      return UField::kMisc;
  }
  return UField::kMisc;
}

std::size_t MopList::pack_schedule() {
  schedule_.clear();
  MicroWord current;
  auto flush = [&] {
    if (!current.empty()) {
      schedule_.push_back(current);
      current = MicroWord{};
    }
  };

  for (std::uint32_t i = 0; i < mops_.size(); ++i) {
    const MopId id{i};
    const Mop& m = mops_[i];
    UField f = field_for(m);

    // Register moves may use either memory port's move field.
    if ((m.kind == MopKind::kMove || m.kind == MopKind::kConst) &&
        current.field[static_cast<std::size_t>(UField::kMoveX)].valid() &&
        !current.field[static_cast<std::size_t>(UField::kMoveY)].valid()) {
      f = UField::kMoveY;
    }

    auto& slot = current.field[static_cast<std::size_t>(f)];
    if (slot.valid()) {
      flush();
    }
    current.field[static_cast<std::size_t>(f)] = id;

    // Control MOPs end the word: the sequencer redirects fetch.
    if (m.is_control()) {
      flush();
    }
  }
  flush();
  return schedule_.size();
}

}  // namespace partita::ir

#include "ir/stmt.hpp"

namespace partita::ir {

std::string_view to_string(StmtKind k) {
  switch (k) {
    case StmtKind::kSeg:
      return "seg";
    case StmtKind::kCall:
      return "call";
    case StmtKind::kIf:
      return "if";
    case StmtKind::kLoop:
      return "loop";
  }
  return "?";
}

}  // namespace partita::ir

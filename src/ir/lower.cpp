#include "ir/lower.hpp"

#include "support/assert.hpp"

namespace partita::ir {

namespace {

/// Emits one micro-word's worth of straight-line DSP work. `phase` rotates
/// through a small set of realistic patterns so a segment's MOP list looks
/// like filter code rather than a NOP sled. Every pattern advances the X
/// address pointer, so consecutive patterns conflict on the AGU-X field and
/// the packer emits exactly one micro-word per pattern -- a segment of N
/// cycles really schedules to N words.
void emit_cycle(MopList& mops, StmtId origin, SymbolId sym, std::uint32_t phase) {
  auto mk = [&](MopKind k) {
    Mop m;
    m.kind = k;
    m.origin = origin;
    return m;
  };
  // The per-cycle AGU pointer update shared by all patterns.
  Mop agu = mk(MopKind::kAguAdd);
  agu.mem = Memory::kX;
  agu.mem_symbol = sym;
  agu.imm = 1;
  mops.add(agu);

  switch (phase % 4) {
    case 0: {  // dual operand fetch + MAC: the inner-product cycle
      Mop lx = mk(MopKind::kLoad);
      lx.mem = Memory::kX;
      lx.mem_symbol = sym;
      lx.dst = Reg{1};
      mops.add(lx);
      Mop ly = mk(MopKind::kLoad);
      ly.mem = Memory::kY;
      ly.mem_symbol = sym;
      ly.dst = Reg{2};
      mops.add(ly);
      Mop mac = mk(MopKind::kMac);
      mac.dst = Reg{0};
      mac.src0 = Reg{1};
      mac.src1 = Reg{2};
      mops.add(mac);
      break;
    }
    case 1: {  // pointer-heavy cycle: Y pointer + accumulate
      Mop aguy = mk(MopKind::kAguAdd);
      aguy.mem = Memory::kY;
      aguy.mem_symbol = sym;
      aguy.imm = 1;
      mops.add(aguy);
      Mop add = mk(MopKind::kAdd);
      add.dst = Reg{3};
      add.src0 = Reg{3};
      add.src1 = Reg{0};
      mops.add(add);
      break;
    }
    case 2: {  // result store + shift (scaling)
      Mop st = mk(MopKind::kStore);
      st.mem = Memory::kX;
      st.mem_symbol = sym;
      st.src0 = Reg{0};
      mops.add(st);
      Mop sh = mk(MopKind::kShift);
      sh.dst = Reg{0};
      sh.src0 = Reg{0};
      sh.imm = 1;
      mops.add(sh);
      break;
    }
    case 3: {  // plain ALU cycle
      Mop sub = mk(MopKind::kSub);
      sub.dst = Reg{4};
      sub.src0 = Reg{4};
      sub.src1 = Reg{1};
      mops.add(sub);
      break;
    }
  }
}

class Lowerer {
 public:
  Lowerer(const Module& module, const Function& fn) : module_(module), fn_(fn) {
    out_.func = fn.id();
  }

  LoweredFunction run() {
    lower_seq(fn_.body());
    out_.schedule_cycles = out_.mops.pack_schedule();
    return std::move(out_);
  }

 private:
  void lower_seq(const std::vector<StmtId>& seq) {
    for (StmtId id : seq) lower_stmt(id);
  }

  void lower_stmt(StmtId id) {
    const Stmt& s = fn_.stmt(id);
    const auto begin = static_cast<std::uint32_t>(out_.mops.size());
    switch (s.kind) {
      case StmtKind::kSeg: {
        const SymbolId sym = s.writes.empty()
                                 ? (s.reads.empty() ? SymbolId{} : s.reads.front())
                                 : s.writes.front();
        for (std::int64_t c = 0; c < s.cycles; ++c) {
          emit_cycle(out_.mops, id, sym, static_cast<std::uint32_t>(c));
        }
        break;
      }
      case StmtKind::kCall: {
        Mop call;
        call.kind = MopKind::kCall;
        call.callee = s.callee;
        call.call_site = s.call_site;
        call.origin = id;
        out_.mops.add(call);
        break;
      }
      case StmtKind::kIf: {
        Mop cmp;
        cmp.kind = MopKind::kCmp;
        cmp.src0 = Reg{5};
        cmp.src1 = Reg{6};
        cmp.origin = id;
        out_.mops.add(cmp);
        Mop br;
        br.kind = MopKind::kBranchIf;
        br.origin = id;
        out_.mops.add(br);
        lower_seq(s.then_stmts);
        Mop skip;
        skip.kind = MopKind::kBranch;
        skip.origin = id;
        out_.mops.add(skip);
        lower_seq(s.else_stmts);
        break;
      }
      case StmtKind::kLoop: {
        Mop init;
        init.kind = MopKind::kConst;
        init.dst = Reg{7};
        init.imm = static_cast<std::int32_t>(s.trip_count);
        init.origin = id;
        out_.mops.add(init);
        lower_seq(s.body_stmts);
        Mop dec;
        dec.kind = MopKind::kSub;
        dec.dst = Reg{7};
        dec.src0 = Reg{7};
        dec.origin = id;
        out_.mops.add(dec);
        Mop back;
        back.kind = MopKind::kBranchIf;
        back.origin = id;
        out_.mops.add(back);
        break;
      }
    }
    const auto end = static_cast<std::uint32_t>(out_.mops.size());
    out_.stmt_range.emplace(id, MopRange{begin, end});
  }

  const Module& module_;
  const Function& fn_;
  LoweredFunction out_;
};

}  // namespace

LoweredFunction lower_function(const Module& module, const Function& fn) {
  return Lowerer(module, fn).run();
}

LoweredModule lower_module(const Module& module) {
  LoweredModule out;
  out.functions.reserve(module.function_count());
  for (std::uint32_t i = 0; i < module.function_count(); ++i) {
    out.functions.push_back(lower_function(module, module.function(FuncId{i})));
  }
  return out;
}

}  // namespace partita::ir

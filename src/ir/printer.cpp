#include "ir/printer.hpp"

#include <sstream>

#include "support/strings.hpp"

namespace partita::ir {

namespace {

class Printer {
 public:
  Printer(const Module& module, std::ostringstream& os) : module_(module), os_(os) {}

  void print_fn(const Function& fn) {
    os_ << "func " << fn.name();
    if (fn.ip_mappable()) os_ << " scall";
    if (fn.declared_sw_cycles()) os_ << " sw_cycles " << *fn.declared_sw_cycles();
    if (fn.body().empty()) {
      os_ << ";\n";
      return;
    }
    os_ << " {\n";
    indent_ = 1;
    print_seq(fn, fn.body());
    os_ << "}\n";
  }

 private:
  void pad() { os_ << std::string(indent_ * 2, ' '); }

  void print_rw(const Stmt& s) {
    auto list = [&](const char* kw, const std::vector<SymbolId>& syms) {
      if (syms.empty()) return;
      os_ << ' ' << kw << '(';
      for (std::size_t i = 0; i < syms.size(); ++i) {
        if (i) os_ << ", ";
        os_ << module_.symbol_name(syms[i]);
      }
      os_ << ')';
    };
    list("reads", s.reads);
    list("writes", s.writes);
  }

  void print_seq(const Function& fn, const std::vector<StmtId>& seq) {
    for (StmtId id : seq) print_stmt(fn, fn.stmt(id));
  }

  void print_stmt(const Function& fn, const Stmt& s) {
    pad();
    switch (s.kind) {
      case StmtKind::kSeg:
        os_ << "seg";
        if (!s.label.empty()) os_ << ' ' << s.label;
        os_ << ' ' << s.cycles;
        print_rw(s);
        os_ << ";\n";
        break;
      case StmtKind::kCall:
        os_ << "call " << module_.function(s.callee).name();
        print_rw(s);
        os_ << ";\n";
        break;
      case StmtKind::kIf:
        os_ << "if prob " << support::compact_double(s.taken_prob) << " {\n";
        ++indent_;
        print_seq(fn, s.then_stmts);
        --indent_;
        pad();
        if (s.else_stmts.empty()) {
          os_ << "}\n";
        } else {
          os_ << "} else {\n";
          ++indent_;
          print_seq(fn, s.else_stmts);
          --indent_;
          pad();
          os_ << "}\n";
        }
        break;
      case StmtKind::kLoop:
        os_ << "loop " << s.trip_count << " {\n";
        ++indent_;
        print_seq(fn, s.body_stmts);
        --indent_;
        pad();
        os_ << "}\n";
        break;
    }
  }

  const Module& module_;
  std::ostringstream& os_;
  int indent_ = 0;
};

}  // namespace

std::string print_function(const Module& module, const Function& fn) {
  std::ostringstream os;
  Printer(module, os).print_fn(fn);
  return os.str();
}

std::string print_module(const Module& module) {
  std::ostringstream os;
  os << "module " << module.name() << ";\n\n";
  // Leaf declarations first so callees exist before their callers parse.
  module.for_each_function([&](const Function& fn) {
    if (fn.body().empty()) os << print_function(module, fn);
  });
  module.for_each_function([&](const Function& fn) {
    if (!fn.body().empty()) {
      os << '\n' << print_function(module, fn);
    }
  });
  if (module.entry().valid()) {
    os << "\nentry " << module.function(module.entry()).name() << ";\n";
  }
  return os.str();
}

std::string print_mops(const Module& module, const LoweredFunction& lowered) {
  std::ostringstream os;
  const MopList& mops = lowered.mops;
  os << "; MOP list of " << module.function(lowered.func).name() << " (" << mops.size()
     << " mops, " << lowered.schedule_cycles << " packed cycles)\n";
  for (std::uint32_t i = 0; i < mops.size(); ++i) {
    const Mop& m = mops[MopId{i}];
    os << i << ": " << to_string(m.kind);
    if (m.mem) os << '.' << to_string(*m.mem);
    if (m.kind == MopKind::kCall || m.kind == MopKind::kIpDispatch) {
      os << ' ' << module.function(m.callee).name();
    }
    os << '\n';
  }
  if (!mops.schedule().empty()) {
    os << "; schedule: " << mops.schedule().size() << " words\n";
    for (std::size_t w = 0; w < mops.schedule().size(); ++w) {
      os << ";   w" << w << ':';
      const MicroWord& word = mops.schedule()[w];
      for (std::size_t f = 0; f < kNumUFields; ++f) {
        if (word.field[f].valid()) {
          os << ' ' << to_string(static_cast<UField>(f)) << '='
             << to_string(mops[word.field[f]].kind);
        }
      }
      os << '\n';
    }
  }
  return os.str();
}

}  // namespace partita::ir

// Textual dump of modules (KL-like syntax) and MOP lists, for debugging,
// golden tests and example output.
#pragma once

#include <string>

#include "ir/function.hpp"
#include "ir/lower.hpp"

namespace partita::ir {

/// Renders the whole module in kernel-language-like syntax. The output of
/// print_module parses back through the frontend (round-trip property tested
/// in tests/frontend_test.cpp).
std::string print_module(const Module& module);

/// Renders one function.
std::string print_function(const Module& module, const Function& fn);

/// Renders a MOP list, one MOP per line, with the packed micro-word schedule
/// when present.
std::string print_mops(const Module& module, const LoweredFunction& lowered);

}  // namespace partita::ir

// Module validation.
//
// All analyses assume a structurally sane module; verify_module checks the
// assumptions up front and reports problems through a DiagnosticEngine so a
// driver can show everything that is wrong with a hand-written KL file.
#pragma once

#include "ir/function.hpp"
#include "support/diagnostics.hpp"

namespace partita::ir {

/// Checks:
///  * an entry function is set and exists;
///  * every call statement targets an existing function and is registered as
///    a call site consistent with the module table;
///  * the call graph is acyclic (the hierarchy handling of Section 4 flattens
///    IMPs bottom-up, which requires no recursion);
///  * statement trees are well-formed: children ids in range, no statement
///    owned by two parents, probabilities in [0,1], trip counts >= 1,
///    segment cycle counts >= 0;
///  * IP-mappable leaf functions carry a software cycle count (declared or
///    derivable from a non-empty body).
///
/// Returns true when no errors were emitted.
bool verify_module(const Module& module, support::DiagnosticEngine& diags);

}  // namespace partita::ir

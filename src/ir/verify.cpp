#include "ir/verify.hpp"

#include <string>
#include <unordered_set>
#include <vector>

namespace partita::ir {

namespace {

class Verifier {
 public:
  Verifier(const Module& module, support::DiagnosticEngine& diags)
      : module_(module), diags_(diags) {}

  bool run() {
    check_entry();
    for (std::uint32_t i = 0; i < module_.function_count(); ++i) {
      check_function(module_.function(FuncId{i}));
    }
    check_call_graph_acyclic();
    check_call_sites();
    return !diags_.has_errors();
  }

 private:
  void error(const std::string& msg) { diags_.error(msg); }

  void check_entry() {
    if (!module_.entry().valid()) {
      error("module has no entry function");
      return;
    }
    if (module_.entry().value() >= module_.function_count()) {
      error("entry function id out of range");
    }
  }

  void check_function(const Function& fn) {
    seen_.assign(fn.stmt_count(), false);
    check_seq(fn, fn.body());

    if (fn.ip_mappable() && fn.body().empty() && !fn.declared_sw_cycles()) {
      error("ip-mappable leaf function '" + fn.name() +
            "' has neither a body nor declared sw_cycles");
    }
  }

  void check_seq(const Function& fn, const std::vector<StmtId>& seq) {
    for (StmtId id : seq) {
      if (!id.valid() || id.value() >= fn.stmt_count()) {
        error("statement id out of range in function '" + fn.name() + "'");
        continue;
      }
      if (seen_[id.value()]) {
        error("statement owned by two parents in function '" + fn.name() + "'");
        continue;
      }
      seen_[id.value()] = true;
      check_stmt(fn, fn.stmt(id));
    }
  }

  void check_stmt(const Function& fn, const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kSeg:
        if (s.cycles < 0) {
          error("negative segment cycle count in '" + fn.name() + "'");
        }
        break;
      case StmtKind::kCall: {
        if (!s.callee.valid() || s.callee.value() >= module_.function_count()) {
          error("call to unknown function in '" + fn.name() + "'");
          break;
        }
        if (!s.call_site.valid()) {
          error("call statement not registered as a call site in '" + fn.name() + "'");
        }
        break;
      }
      case StmtKind::kIf:
        if (s.taken_prob < 0.0 || s.taken_prob > 1.0) {
          error("if probability outside [0,1] in '" + fn.name() + "'");
        }
        check_seq(fn, s.then_stmts);
        check_seq(fn, s.else_stmts);
        break;
      case StmtKind::kLoop:
        if (s.trip_count < 1) {
          error("loop trip count < 1 in '" + fn.name() + "'");
        }
        check_seq(fn, s.body_stmts);
        break;
    }
  }

  void check_call_graph_acyclic() {
    const std::size_t n = module_.function_count();
    std::vector<std::uint8_t> state(n, 0);
    for (std::uint32_t root = 0; root < n; ++root) {
      if (state[root] != 0) continue;
      if (dfs_cycle(FuncId{root}, state)) return;  // one report is enough
    }
  }

  bool dfs_cycle(FuncId f, std::vector<std::uint8_t>& state) {
    state[f.value()] = 1;
    for (FuncId c : module_.callees_of(f)) {
      if (state[c.value()] == 1) {
        error("recursive call graph involving '" + module_.function(c).name() + "'");
        return true;
      }
      if (state[c.value()] == 0 && dfs_cycle(c, state)) return true;
    }
    state[f.value()] = 2;
    return false;
  }

  void check_call_sites() {
    std::unordered_set<std::uint32_t> referenced;
    for (const CallSite& cs : module_.call_sites()) {
      if (!cs.caller.valid() || cs.caller.value() >= module_.function_count()) {
        error("call site with invalid caller");
        continue;
      }
      const Function& caller = module_.function(cs.caller);
      if (!cs.stmt.valid() || cs.stmt.value() >= caller.stmt_count()) {
        error("call site with invalid statement in '" + caller.name() + "'");
        continue;
      }
      const Stmt& s = caller.stmt(cs.stmt);
      if (s.kind != StmtKind::kCall) {
        error("call site does not reference a call statement in '" + caller.name() + "'");
        continue;
      }
      if (s.callee != cs.callee) {
        error("call-site callee mismatch in '" + caller.name() + "'");
      }
      if (s.call_site != cs.id) {
        error("call-site back-reference mismatch in '" + caller.name() + "'");
      }
      referenced.insert(cs.id.value());
    }
  }

  const Module& module_;
  support::DiagnosticEngine& diags_;
  std::vector<bool> seen_;
};

}  // namespace

bool verify_module(const Module& module, support::DiagnosticEngine& diags) {
  return Verifier(module, diags).run();
}

}  // namespace partita::ir

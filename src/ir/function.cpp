#include "ir/function.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace partita::ir {

Function& Module::create_function(std::string name) {
  // invariant: both frontends (KL parser, MiniC codegen) diagnose duplicate
  // function names before calling create_function.
  PARTITA_ASSERT_MSG(func_by_name_.find(name) == func_by_name_.end(),
                     "duplicate function name");
  const FuncId id{static_cast<std::uint32_t>(funcs_.size())};
  funcs_.emplace_back(id, name);
  func_by_name_.emplace(std::move(name), id);
  return funcs_.back();
}

FuncId Module::find_function(std::string_view name) const {
  auto it = func_by_name_.find(std::string(name));
  return it == func_by_name_.end() ? FuncId::invalid() : it->second;
}

SymbolId Module::intern_symbol(std::string_view name) {
  auto it = symbol_by_name_.find(std::string(name));
  if (it != symbol_by_name_.end()) return it->second;
  const SymbolId id{static_cast<std::uint32_t>(symbols_.size())};
  symbols_.emplace_back(name);
  symbol_by_name_.emplace(std::string(name), id);
  return id;
}

CallSiteId Module::register_call_site(FuncId caller, StmtId stmt, FuncId callee) {
  const CallSiteId id{static_cast<std::uint32_t>(call_sites_.size())};
  call_sites_.push_back({id, caller, stmt, callee});
  function(caller).stmt(stmt).call_site = id;
  return id;
}

std::vector<FuncId> Module::callees_of(FuncId f) const {
  std::vector<FuncId> out;
  function(f).for_each_stmt([&](StmtId, const Stmt& s) {
    if (s.kind == StmtKind::kCall && s.callee.valid()) {
      if (std::find(out.begin(), out.end(), s.callee) == out.end()) {
        out.push_back(s.callee);
      }
    }
  });
  return out;
}

std::vector<FuncId> Module::bottom_up_order() const {
  std::vector<FuncId> order;
  std::vector<std::uint8_t> state(funcs_.size(), 0);  // 0=unseen 1=visiting 2=done

  // Iterative DFS post-order.
  struct Frame {
    FuncId f;
    std::vector<FuncId> callees;
    std::size_t next = 0;
  };
  for (std::uint32_t root = 0; root < funcs_.size(); ++root) {
    if (state[root] != 0) continue;
    std::vector<Frame> stack;
    stack.push_back({FuncId{root}, callees_of(FuncId{root})});
    state[root] = 1;
    while (!stack.empty()) {
      Frame& top = stack.back();
      if (top.next < top.callees.size()) {
        const FuncId c = top.callees[top.next++];
        // invariant: ir::verify_module rejects recursive call graphs with a
        // diagnostic before any analysis walks the module.
        PARTITA_ASSERT_MSG(state[c.value()] != 1, "recursive call graph");
        if (state[c.value()] == 0) {
          state[c.value()] = 1;
          stack.push_back({c, callees_of(c)});
        }
      } else {
        state[top.f.value()] = 2;
        order.push_back(top.f);
        stack.pop_back();
      }
    }
  }
  return order;
}

}  // namespace partita::ir

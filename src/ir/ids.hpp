// Strongly-typed indices into the IR arenas.
//
// Every IR object lives in a flat vector owned by its parent (Module owns
// Functions, Function owns Stmts, MopList owns Mops...). These wrappers keep
// the indices from being mixed up while staying trivially copyable.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace partita::ir {

namespace detail {

/// CRTP-free tagged index. Tag is a phantom type, one per arena.
template <typename Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(std::uint32_t v) : value_(v) {}

  constexpr bool valid() const { return value_ != kInvalid; }
  constexpr std::uint32_t value() const { return value_; }

  constexpr bool operator==(const Id&) const = default;
  constexpr auto operator<=>(const Id&) const = default;

  static constexpr Id invalid() { return Id{}; }

 private:
  static constexpr std::uint32_t kInvalid = std::numeric_limits<std::uint32_t>::max();
  std::uint32_t value_ = kInvalid;
};

}  // namespace detail

struct FuncTag;
struct StmtTag;
struct MopTag;
struct SymbolTag;
struct CallSiteTag;

using FuncId = detail::Id<FuncTag>;
using StmtId = detail::Id<StmtTag>;
using MopId = detail::Id<MopTag>;
using SymbolId = detail::Id<SymbolTag>;
/// Identifies one *static* call site (an s-call occurrence, "SC_i" in the
/// paper) across the whole module.
using CallSiteId = detail::Id<CallSiteTag>;

}  // namespace partita::ir

template <typename Tag>
struct std::hash<partita::ir::detail::Id<Tag>> {
  std::size_t operator()(const partita::ir::detail::Id<Tag>& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};

// Functions, modules, symbol table and the call graph.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ir/ids.hpp"
#include "ir/stmt.hpp"

namespace partita::ir {

/// A function: a statement arena plus its top-level body sequence.
///
/// `sw_cycles` is the software execution time of one invocation on the
/// ASIP-core (the paper's T_SW for this function when it is an s-call);
/// for leaf s-callable functions it may be declared directly, otherwise it
/// is computed by the profiler from the body.
class Function {
 public:
  Function(FuncId id, std::string name) : id_(id), name_(std::move(name)) {}

  FuncId id() const { return id_; }
  const std::string& name() const { return name_; }

  /// True if this function can be implemented by an IP (Definition 1:
  /// candidates for s-calls).
  bool ip_mappable() const { return ip_mappable_; }
  void set_ip_mappable(bool v) { ip_mappable_ = v; }

  /// Declared software cycle count (leaf functions); nullopt means "derive
  /// from the body via the profiler".
  std::optional<std::int64_t> declared_sw_cycles() const { return declared_sw_cycles_; }
  void set_declared_sw_cycles(std::int64_t c) { declared_sw_cycles_ = c; }

  StmtId add_stmt(Stmt s) {
    const StmtId id{static_cast<std::uint32_t>(stmts_.size())};
    stmts_.push_back(std::move(s));
    return id;
  }

  const Stmt& stmt(StmtId id) const { return stmts_[id.value()]; }
  Stmt& stmt(StmtId id) { return stmts_[id.value()]; }
  std::size_t stmt_count() const { return stmts_.size(); }

  const std::vector<StmtId>& body() const { return body_; }
  std::vector<StmtId>& body() { return body_; }

  /// Calls visit(id, stmt) for every statement in the arena.
  template <typename F>
  void for_each_stmt(F&& visit) const {
    for (std::uint32_t i = 0; i < stmts_.size(); ++i) {
      visit(StmtId{i}, stmts_[i]);
    }
  }

 private:
  FuncId id_;
  std::string name_;
  bool ip_mappable_ = false;
  std::optional<std::int64_t> declared_sw_cycles_;
  std::vector<Stmt> stmts_;
  std::vector<StmtId> body_;
};

/// Identifies one static call occurrence: which function contains it and
/// which statement it is.
struct CallSite {
  CallSiteId id;
  FuncId caller;
  StmtId stmt;
  FuncId callee;
};

/// A whole application: functions, symbols, call sites.
class Module {
 public:
  explicit Module(std::string name = "module") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Creates an empty function; the name must be unique.
  Function& create_function(std::string name);

  Function& function(FuncId id) { return funcs_[id.value()]; }
  const Function& function(FuncId id) const { return funcs_[id.value()]; }
  std::size_t function_count() const { return funcs_.size(); }

  /// Finds a function by name; invalid FuncId if absent.
  FuncId find_function(std::string_view name) const;

  template <typename F>
  void for_each_function(F&& visit) const {
    for (const Function& f : funcs_) visit(f);
  }

  /// Interns a symbol name, returning a stable id.
  SymbolId intern_symbol(std::string_view name);
  const std::string& symbol_name(SymbolId id) const { return symbols_[id.value()]; }
  std::size_t symbol_count() const { return symbols_.size(); }

  /// Registers a call statement as a call site; returns its module-wide id.
  /// Called by the frontend / builders after adding a kCall statement.
  CallSiteId register_call_site(FuncId caller, StmtId stmt, FuncId callee);

  const CallSite& call_site(CallSiteId id) const { return call_sites_[id.value()]; }
  const std::vector<CallSite>& call_sites() const { return call_sites_; }

  /// The entry function ("main" by default); must be set before analysis.
  FuncId entry() const { return entry_; }
  void set_entry(FuncId f) { entry_ = f; }

  /// All direct callees of f (deduplicated, in first-occurrence order).
  std::vector<FuncId> callees_of(FuncId f) const;

  /// Functions in reverse-topological order of the call graph (callees before
  /// callers). Requires an acyclic call graph (no recursion) — verified by
  /// verify_module.
  std::vector<FuncId> bottom_up_order() const;

 private:
  std::string name_;
  // deque: create_function must not invalidate references to earlier
  // functions (builders commonly hold several at once).
  std::deque<Function> funcs_;
  std::unordered_map<std::string, FuncId> func_by_name_;
  std::vector<std::string> symbols_;
  std::unordered_map<std::string, SymbolId> symbol_by_name_;
  std::vector<CallSite> call_sites_;
  FuncId entry_;
};

}  // namespace partita::ir

// Bring-your-own IP library: per-IP interface feasibility and trade-off
// report, then a selection run against a KL application.
//
// Usage:
//   ./build/examples/custom_ip_library                 # built-in demo data
//   ./build/examples/custom_ip_library app.kl lib.ip [required_gain]
//
// For every (IP, function, interface type) combination the report shows
// whether the Section 3 rules admit it, the timing breakdown and the area,
// making the interface model inspectable in isolation before the ILP runs.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "frontend/parser.hpp"
#include "iface/model.hpp"
#include "iplib/loader.hpp"
#include "select/flow.hpp"
#include "support/strings.hpp"
#include "support/text_table.hpp"

using namespace partita;

static const char* kDemoApp = R"(
module custom_demo;
func conv2d scall sw_cycles 40000;
func relu   scall sw_cycles 6000;
func main {
  seg fetch 1000 writes(img);
  call conv2d reads(img) writes(fmap);
  seg stats 2500 reads(img) writes(hist);
  call relu reads(fmap) writes(act);
  seg store 900 reads(act, hist);
}
)";

static const char* kDemoLib = R"(
ip CONV_ENGINE {
  area 20
  ports in 4 out 2
  rate in 1 out 2
  latency 30
  pipelined
  protocol stream
  fn conv2d cycles 9000 in 256 out 128
}
ip VECTOR_ALU {
  area 5
  ports in 2 out 2
  rate in 4 out 4
  latency 6
  pipelined
  protocol sync
  fn relu cycles 1500 in 64 out 64
  fn conv2d cycles 26000 in 256 out 128
}
)";

static std::string slurp(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int main(int argc, char** argv) {
  std::string app_text = kDemoApp, lib_text = kDemoLib;
  if (argc >= 3) {
    app_text = slurp(argv[1]);
    lib_text = slurp(argv[2]);
  }

  support::DiagnosticEngine diags;
  auto module = frontend::parse_module(app_text, diags);
  auto library = iplib::load_library(lib_text, diags);
  if (!module || !library) {
    std::fprintf(stderr, "%s", diags.render_all().c_str());
    return 1;
  }

  // --- per-IP interface report ------------------------------------------
  const iface::KernelParams kernel;
  std::printf("=== interface trade-off report ===\n");
  for (const iplib::IpDescriptor& ip : library->all()) {
    for (const iplib::IpFunction& fn : ip.functions) {
      std::printf("\n%s executing %s (T_IP=%lld, %d/%d ports, rate %d/%d):\n",
                  ip.name.c_str(), fn.function.c_str(),
                  static_cast<long long>(ip.execution_cycles(fn)), ip.in_ports,
                  ip.out_ports, ip.in_rate, ip.out_rate);
      support::TextTable t({"type", "applicable", "total cycles", "slowdown", "area"});
      t.set_alignment({support::Align::kLeft, support::Align::kLeft,
                       support::Align::kRight, support::Align::kRight,
                       support::Align::kRight});
      for (iface::InterfaceType type : iface::kAllInterfaceTypes) {
        const iface::Applicability app = iface::applicable(type, ip, kernel);
        if (!app.ok) {
          t.add_row({std::string(iface::short_name(type)), "no: " + app.reason, "-", "-",
                     "-"});
          continue;
        }
        const iface::InterfaceTiming timing =
            iface::interface_timing(type, ip, fn, 0, kernel);
        const iface::InterfaceCost cost = iface::interface_cost(type, ip, fn, kernel);
        t.add_row({std::string(iface::short_name(type)), "yes",
                   support::with_commas(timing.total_cycles),
                   support::compact_double(timing.clock_slowdown),
                   support::compact_double(cost.total())});
      }
      std::fputs(t.render().c_str(), stdout);
    }
  }

  // --- full selection -----------------------------------------------------
  select::Flow flow(*module, *library);
  const std::int64_t gmax = flow.max_feasible_gain();
  const std::int64_t rg =
      argc >= 4 ? std::atoll(argv[3]) : gmax / 2;
  std::printf("\n=== selection (max feasible gain %s, RG %s) ===\n",
              support::with_commas(gmax).c_str(), support::with_commas(rg).c_str());
  const select::Selection sel = flow.select(rg);
  if (!sel.feasible) {
    std::printf("infeasible at this RG\n");
    return 0;
  }
  std::printf("%s\n", sel.describe(flow.imp_database(), *library).c_str());
  std::printf("area %.2f | S-instructions %d | implemented s-calls %d\n", sel.total_area(),
              sel.s_instructions, sel.selected_scalls);
  return 0;
}

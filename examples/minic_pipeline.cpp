// MiniC end-to-end: the paper's starting point is "the application program
// written in C". This example compiles a MiniC audio-effect chain with the
// C-subset frontend -- cycle counts, dependences, loop trips and branch
// probabilities are all *derived*, not declared -- then prints the resulting
// statement IR (as KL) and runs the full selection on it.
//
// Build & run:  ./build/examples/minic_pipeline
#include <cstdio>

#include "iplib/loader.hpp"
#include "ir/printer.hpp"
#include "minic/mc_codegen.hpp"
#include "select/flow.hpp"
#include "support/strings.hpp"

static const char* kProgram = R"(
/* A toy audio effect chain: biquad filter -> compressor -> limiter. */

int frame[128];
int filtered[128];
int level;
int packed;

/* Profiled DSP kernels available as IP blocks. */
__scall __cycles(18000) void biquad(in int x[], out int y[]);
__scall __cycles(7000)  void compress(inout int y[]);

/* Envelope follower: plain software (no IP implements it). Reading only the
 * raw frame makes it independent of the biquad -> parallel-code material. */
void envelope(in int x[], out int lvl) {
  lvl = 0;
  for (j = 0; j < 128; j = j + 1) {
    lvl = lvl + (x[j] & 32767);
  }
}

void main() {
  /* deinterleave + DC removal: cycles derived from the op mix */
  for (i = 0; i < 128; i = i + 1) {
    frame[i] = frame[i] - (frame[i] >> 7);
  }

  biquad(frame, filtered);
  envelope(frame, level);

  compress(filtered);

  if (__prob(0.2)) {
    /* rare limiter path */
    for (k = 0; k < 128; k = k + 1) {
      filtered[k] = filtered[k] >> 1;
    }
  }

  packed = filtered[0] + level;
}
)";

static const char* kLibrary = R"(
ip BIQUAD_CORE {
  area 11
  power 0.8
  ports in 2 out 2
  rate in 4 out 4
  latency 12
  pipelined
  protocol sync
  fn biquad cycles 3500 in 128 out 128
}
ip DYN_UNIT {
  area 6
  power 0.5
  ports in 2 out 2
  rate in 4 out 4
  latency 8
  pipelined
  protocol sync
  fn compress cycles 1800 in 128 out 128
}
)";

int main() {
  using namespace partita;
  support::DiagnosticEngine diags;
  auto module = minic::mc_compile_source(kProgram, "audio_chain", diags);
  auto library = iplib::load_library(kLibrary, diags);
  if (!module || !library) {
    std::fprintf(stderr, "%s", diags.render_all().c_str());
    return 1;
  }

  std::printf("=== derived statement IR (printed as KL) ===\n%s\n",
              ir::print_module(*module).c_str());

  select::Flow flow(*module, *library);
  std::printf("profiled software time: %s cycles\n",
              support::with_commas(flow.profile().total_cycles).c_str());
  std::printf("s-calls found: %zu | IMPs: %zu\n\n", flow.scalls().size(),
              flow.imp_database().imps().size());

  const std::int64_t gmax = flow.max_feasible_gain();
  for (int pct : {40, 70, 100}) {
    const std::int64_t rg = gmax * pct / 100;
    const select::Selection sel = flow.select(rg);
    std::printf("RG %3d%% (%s): ", pct, support::with_commas(rg).c_str());
    if (!sel.feasible) {
      std::printf("infeasible\n");
      continue;
    }
    std::printf("%s  (area %.2f)\n",
                sel.describe(flow.imp_database(), *library).c_str(), sel.total_area());
  }
  std::printf(
      "\nNote: the envelope-follower loop reads only the raw frame, so the\n"
      "compiler-derived dependences let it serve as the biquad IP's parallel\n"
      "code on buffered interfaces -- check the IF1/IF3 selections above.\n");
  return 0;
}

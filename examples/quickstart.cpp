// Quickstart: the whole pipeline on a ten-line application.
//
//   1. Write the application in KL (the kernel language): functions, code
//      segments with cycle counts, calls, dependence annotations.
//   2. Describe the available IP blocks.
//   3. Run the Flow: profile -> CDFG -> s-calls -> IMP enumeration -> ILP.
//   4. Ask for a required performance gain and read the selected
//      IP/interface per s-call.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "frontend/parser.hpp"
#include "iplib/loader.hpp"
#include "select/flow.hpp"
#include "sim/cosim.hpp"

// A toy voice pipeline: one hot filter call dominated by software time, some
// independent post-processing that can overlap an IP run.
static const char* kApp = R"(
module quickstart;

func fir scall sw_cycles 20000;      # the acceleration candidate

func main {
  seg read_samples 500 writes(buf);
  call fir reads(buf) writes(filtered);
  seg agc 3000 reads(buf) writes(gain);      # independent of fir: overlaps!
  seg emit 800 reads(filtered, gain);
}
)";

static const char* kLibrary = R"(
ip FIR_CORE {
  area 9
  ports in 2 out 2
  rate in 4 out 4
  latency 16
  pipelined
  protocol sync
  fn fir cycles 4000 in 64 out 64
}
)";

int main() {
  using namespace partita;

  // 1+2. Parse the application and the IP library.
  support::DiagnosticEngine diags;
  auto module = frontend::parse_module(kApp, diags);
  auto library = iplib::load_library(kLibrary, diags);
  if (!module || !library) {
    std::fprintf(stderr, "%s", diags.render_all().c_str());
    return 1;
  }

  // 3. Run every analysis stage.
  select::Flow flow(*module, *library);
  std::printf("application software time : %lld cycles\n",
              static_cast<long long>(flow.profile().total_cycles));
  std::printf("s-call candidates         : %zu\n", flow.scalls().size());
  std::printf("implementation methods    : %zu\n", flow.imp_database().imps().size());
  for (const isel::Imp& imp : flow.imp_database().imps()) {
    std::printf("  IMP%u: %s\n", imp.index, imp.describe(*library).c_str());
  }

  // 4. Select for a required gain of 17,000 cycles.
  const std::int64_t rg = 17000;
  const select::Selection sel = flow.select(rg);
  if (!sel.feasible) {
    std::printf("\nno IP/interface combination reaches a gain of %lld\n",
                static_cast<long long>(rg));
    return 0;
  }
  std::printf("\nselection for RG=%lld:\n  %s\n  total area %.2f (IP %.2f + interface %.2f)\n",
              static_cast<long long>(rg),
              sel.describe(flow.imp_database(), *library).c_str(), sel.total_area(),
              sel.ip_area, sel.interface_area);

  // Cross-check with the cycle-level co-simulator.
  sim::CoSimulator cosim(*module, *library, flow.imp_database(), flow.entry_cdfg(),
                         flow.paths());
  support::Rng rng(1);
  const auto sw = cosim.run(nullptr, rng);
  const auto hw = cosim.run(&sel, rng);
  std::printf("\nco-simulation: %lld -> %lld cycles (gain %lld, %lld of them overlapped)\n",
              static_cast<long long>(sw.total_cycles),
              static_cast<long long>(hw.total_cycles),
              static_cast<long long>(sw.total_cycles - hw.total_cycles),
              static_cast<long long>(hw.overlap_cycles));
  return 0;
}

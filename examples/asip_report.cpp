// Full back-end walk-through: from an application + IP library to the
// generated-ASIP summary (Section 2's output): instruction classes P/C/S
// with Huffman opcodes, optimized u-ROM, synthesized interface FSMs, area
// and power totals, and the guaranteed cycle count.
//
// Usage: ./build/examples/asip_report [gsm_encoder|gsm_decoder|jpeg_encoder]
//                                     [gain_fraction_percent]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "report/chip_report.hpp"
#include "workloads/workloads.hpp"

using namespace partita;

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "gsm_encoder";
  const int pct = argc > 2 ? std::atoi(argv[2]) : 60;
  if (pct < 1 || pct > 100) {
    std::fprintf(stderr, "gain fraction must be 1..100\n");
    return 1;
  }

  workloads::Workload w;
  if (which == "gsm_encoder") w = workloads::gsm_encoder();
  else if (which == "gsm_decoder") w = workloads::gsm_decoder();
  else if (which == "jpeg_encoder") w = workloads::jpeg_encoder();
  else {
    std::fprintf(stderr, "usage: %s [gsm_encoder|gsm_decoder|jpeg_encoder] [pct]\n",
                 argv[0]);
    return 1;
  }

  select::Flow flow(w.module, w.library);
  const std::int64_t gmax = flow.max_feasible_gain();
  const std::int64_t rg = gmax * pct / 100;
  std::printf("selecting for %d%% of the maximum guaranteed gain (%lld of %lld)...\n\n",
              pct, static_cast<long long>(rg), static_cast<long long>(gmax));
  const select::Selection sel = flow.select(rg);
  if (!sel.feasible) {
    std::printf("infeasible\n");
    return 1;
  }

  const report::ChipReport rep = report::generate_report(flow, sel);
  std::fputs(rep.text.c_str(), stdout);
  return 0;
}

// GSM codec design-space explorer.
//
// Reproduces the paper's main use case interactively: for the GSM encoder
// and decoder, sweep the required gain in caller-chosen steps, print the
// Table 1/2-style rows, and co-simulate the selected design versus pure
// software. Optional argv[1] selects "encoder"/"decoder"; argv[2] the number
// of sweep steps (default 8, the paper's row count).
//
// Build & run:  ./build/examples/gsm_codec_explorer encoder 8
#include <cstdio>
#include <cstdlib>
#include <string>

#include "select/flow.hpp"
#include "sim/cosim.hpp"
#include "support/strings.hpp"
#include "support/text_table.hpp"
#include "workloads/workloads.hpp"

using namespace partita;

static void explore(const workloads::Workload& w, int steps) {
  select::Flow flow(w.module, w.library);
  sim::CoSimulator cosim(w.module, w.library, flow.imp_database(), flow.entry_cdfg(),
                         flow.paths());
  const std::int64_t gmax = flow.max_feasible_gain();

  std::printf("== %s ==\n", w.name.c_str());
  std::printf("s-calls %zu | IPs %zu | IMPs %zu | max guaranteed gain %s\n\n",
              flow.scalls().size(), w.library.size(), flow.imp_database().imps().size(),
              support::with_commas(gmax).c_str());

  support::TextTable t(
      {"RG", "G", "area", "S", "O", "sim sw", "sim accel", "sim gain"});
  t.set_alignment(std::vector<support::Align>(8, support::Align::kRight));

  for (int k = 1; k <= steps; ++k) {
    const std::int64_t rg = gmax * k / steps;
    const select::Selection sel = flow.select(rg);
    if (!sel.feasible) {
      t.add_row({support::with_commas(rg), "-", "-", "-", "-", "-", "-", "infeasible"});
      continue;
    }
    support::Rng r1(7), r2(7);
    const auto sw = cosim.run(nullptr, r1);
    const auto hw = cosim.run(&sel, r2);
    t.add_row({support::with_commas(rg), support::with_commas(sel.min_path_gain),
               support::compact_double(sel.total_area()),
               std::to_string(sel.s_instructions), std::to_string(sel.selected_scalls),
               support::with_commas(sw.total_cycles), support::with_commas(hw.total_cycles),
               support::with_commas(sw.total_cycles - hw.total_cycles)});
  }
  std::fputs(t.render().c_str(), stdout);

  // Show the concrete implementation of the densest design point.
  const select::Selection top = flow.select(gmax);
  std::printf("\nfull-throttle design (RG = Gmax):\n  %s\n\n",
              top.describe(flow.imp_database(), w.library).c_str());
}

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "both";
  const int steps = argc > 2 ? std::atoi(argv[2]) : 8;
  if (steps < 1 || steps > 64) {
    std::fprintf(stderr, "steps must be within 1..64\n");
    return 1;
  }
  if (which == "encoder" || which == "both") explore(workloads::gsm_encoder(), steps);
  if (which == "decoder" || which == "both") explore(workloads::gsm_decoder(), steps);
  if (which != "encoder" && which != "decoder" && which != "both") {
    std::fprintf(stderr, "usage: %s [encoder|decoder|both] [steps]\n", argv[0]);
    return 1;
  }
  return 0;
}

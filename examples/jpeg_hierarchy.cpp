// Hierarchy walk-through: how IMP flattening climbs the JPEG call tree.
//
// Prints the 2D-DCT s-call's IMP database annotated with the hierarchy
// level each IMP taps (C-MUL deep inside the FFT, up to the monolithic
// 2D-DCT block), then shows which level the optimizer picks as the required
// gain rises -- Table 3's ladder.
//
// Build & run:  ./build/examples/jpeg_hierarchy
#include <cstdio>

#include "select/flow.hpp"
#include "support/strings.hpp"
#include "workloads/workloads.hpp"

using namespace partita;

int main() {
  workloads::Workload w = workloads::jpeg_encoder();
  select::Flow flow(w.module, w.library);

  std::printf("JPEG hierarchy: dct2d -> dct1d -> fft -> cmul (plus zigzag)\n");
  std::printf("profile cycles per run: %s\n\n",
              support::with_commas(flow.profile().total_cycles).c_str());

  // 1. The flattened IMP database of the dct2d s-call.
  std::printf("IMPs of the dct2d s-call (hierarchy depth = how far the IP\n");
  std::printf("sits below the call; inner execs = IP activations per call):\n");
  for (const isel::Imp& imp : flow.imp_database().imps()) {
    const isel::SCall* sc = flow.imp_database().scall_of(imp.scall);
    if (!sc || sc->callee_name != "dct2d") continue;
    std::printf("  depth %d | %-6s on %-4s via %s | inner execs %g | gain %s\n",
                imp.flatten_depth, imp.ip_function->function.c_str(),
                w.library.ip(imp.ip).name.c_str(),
                std::string(iface::short_name(imp.iface_type)).c_str(),
                imp.inner_calls_per_exec, support::with_commas(imp.gain).c_str());
  }

  // 2. The ladder: which level wins as RG rises.
  std::printf("\nchosen level per required gain:\n");
  const std::int64_t gmax = flow.max_feasible_gain();
  for (int pct : {10, 30, 50, 70, 85, 95, 100}) {
    const std::int64_t rg = gmax * pct / 100;
    const select::Selection sel = flow.select(rg);
    std::printf("  RG %3d%% (%s): ", pct, support::with_commas(rg).c_str());
    if (!sel.feasible) {
      std::printf("infeasible\n");
      continue;
    }
    bool first = true;
    for (isel::ImpIndex idx : sel.chosen) {
      const isel::Imp& imp = flow.imp_database().imps()[idx];
      std::printf("%s%s/%s", first ? "" : " + ", imp.ip_function->function.c_str(),
                  std::string(iface::short_name(imp.iface_type)).c_str());
      first = false;
    }
    std::printf("  (area %.2f)\n", sel.total_area());
  }

  std::printf("\nNote how cheap deep-level IPs satisfy small requirements and the\n");
  std::printf("monolithic 2D-DCT block only pays off near the top of the range --\n");
  std::printf("exactly the progression of the paper's Table 3.\n");
  return 0;
}

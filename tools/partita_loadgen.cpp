// partita_loadgen — closed/open-loop load generator for the wire service.
//
// Drives a partita-wire-v1 server with scripted scenarios, measures
// per-request latency end to end (submit sent -> terminal state received
// over the socket) and emits throughput + p50/p99 into the partita-bench-v1
// trajectory. Two targets:
//
//   --connect ENDPOINT    storm an already-running partita_serve (the CI
//                         tier-2 job does this with fault sites armed);
//   self-serve (default)  boot an in-process service + server per policy in
//                         --policies and run the scenario against each --
//                         the fifo-vs-priority comparison lives here.
//
// Scenarios:
//   smoke   tiny sanity run (few sessions, built-in workloads);
//   mixed   the mixed-budget contrast: interactive-class sessions submit
//           small instances with small declared budgets while batch-class
//           sessions submit large generated instances with big budgets --
//           the scenario where priority+backfill must beat FIFO on
//           interactive p99 (--require-priority-win gates it);
//   storm   heterogeneous chaos: random workloads, priorities, deadlines,
//           tenants and random cancels -- run under armed fault sites to
//           prove no submitted request ever loses its terminal state.
//
// Arrival models: closed (each session submits, waits, repeats) or open:GAP
// (submit every GAP ms regardless of completions, collect asynchronously
// over the same multiplexed connection).
//
// Cache traffic shaping: --repeat-fraction P resubmits an already-issued
// request verbatim with probability P (exact-hit material for the solution
// cache), --perturb-fraction Q resubmits one with a shifted required gain
// (near-miss material for neighbor seeding). Either implies --cache for
// self-serve runs; in --connect mode boot partita_serve with --cache. Each
// run's per-request cache markers are tallied into a "cache" block of the
// serve section (hit/neighbor/miss/bypass + hit_rate), and a baseline with
// serve.cache_hit_rate_min gates the observed hit rate.
//
// The zero-lost-terminal-state assertion is always on: every submitted
// request must be observed reaching exactly one terminal state over the
// wire, else exit 1.
//
// Kill-and-recover harness (docs/durability.md): --kill-after MS --kill-pid
// P SIGKILLs the serving process mid-storm (simulated power loss) from a
// timer thread; with --recover, requests whose connection died are counted
// `interrupted` instead of lost -- their fate is settled by the journal, not
// the wire. After the restarted daemon replays them, --verify-journal DIR
// polls the journal until no admit is undecided (--verify-timeout S, default
// 60) and then asserts every admitted item reached exactly one terminal
// state, dumping deterministic `terminal STATE LABEL SIGNATURE` lines the CI
// recover job diffs against an uninterrupted control run.
//
// exit codes: 0 ok, 1 lost terminal states / gate failure / priority did
// not win / journal verification failure, 2 usage, 3 connect failure.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <signal.h>

#include "bench_meta.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "service/journal.hpp"
#include "service/solve_service.hpp"
#include "support/json.hpp"

using namespace partita;
using SteadyClock = std::chrono::steady_clock;

namespace {

constexpr int kExitUsage = 2;
constexpr int kExitConnect = 3;

struct Options {
  std::string connect;                    // "" = self-serve
  std::vector<std::string> policies{"fifo"};
  std::string scenario = "smoke";
  std::string arrival = "closed";         // or "open:<gap_ms>"
  double open_gap_ms = 20.0;
  int sessions = 0;                       // 0 = scenario default
  int requests = 0;                       // 0 = scenario default
  double cancel_prob = -1.0;              // <0 = scenario default
  std::uint64_t seed = 1;
  int workers = 2;                        // self-serve pool
  std::size_t queue_depth = 0;            // 0 = scenario default
  std::string out_path;                   // "" = BENCH_<date>.json
  bool no_out = false;
  std::string check_path;
  bool require_priority_win = false;
  double repeat_fraction = 0.0;           // P(resubmit an issued request verbatim)
  double perturb_fraction = 0.0;          // P(resubmit with a shifted gain)
  bool cache = false;                     // self-serve: enable the solution cache
  double kill_after_ms = 0.0;             // SIGKILL --kill-pid after this delay
  long kill_pid = 0;
  bool recover = false;                   // connection death = interrupted, not lost
  std::string verify_journal;             // journal dir to verify, then exit
  double verify_timeout_s = 60.0;         // poll budget for undecided admits
};

/// One observed request: its class, end-to-end latency, terminal state and
/// solution-cache marker ("" when the service runs cacheless).
struct Rec {
  int klass = service::kPriorityStandard;
  double ms = 0.0;
  std::string state;
  std::string cache;
};

struct RunResult {
  std::string policy;
  double seconds = 0.0;
  std::vector<Rec> recs;
  std::uint64_t lost = 0;      // submits with no observed terminal state
  std::uint64_t interrupted = 0;  // connection died under --recover; journal decides
  std::uint64_t submitted = 0;
};

double ms_since(SteadyClock::time_point t0) {
  return std::chrono::duration<double, std::milli>(SteadyClock::now() - t0).count();
}

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: partita_loadgen [--connect ENDPOINT | --policies a,b]\n"
      "  [--scenario smoke|mixed|storm] [--arrival closed|open:GAPMS]\n"
      "  [--sessions N] [--requests N] [--cancel-prob P] [--seed S]\n"
      "  [--workers N] [--queue-depth N] [--out PATH | --no-out]\n"
      "  [--check BASELINE] [--require-priority-win]\n"
      "  [--repeat-fraction P] [--perturb-fraction P] [--cache]\n"
      "  [--kill-after MS --kill-pid P] [--recover]\n"
      "  [--verify-journal DIR [--verify-timeout S]]\n");
  std::exit(kExitUsage);
}

// --- scenario request synthesis --------------------------------------------

struct Scenario {
  int sessions = 2;
  int requests = 4;         // per session
  double cancel_prob = 0.0;
  std::size_t queue_depth = 64;
  int interactive_sessions = 0;  // mixed: first K sessions are interactive
};

Scenario scenario_defaults(const std::string& name, const Options& opt) {
  Scenario s;
  if (name == "smoke") {
    s = {2, 4, 0.0, 64, 0};
  } else if (name == "mixed") {
    s = {6, 5, 0.0, 64, 2};
  } else if (name == "storm") {
    s = {8, 6, 0.25, 8, 0};
  } else {
    std::fprintf(stderr, "partita_loadgen: unknown scenario '%s'\n", name.c_str());
    std::exit(kExitUsage);
  }
  if (opt.sessions > 0) {
    s.sessions = opt.sessions;
    if (name == "mixed") s.interactive_sessions = std::max(1, opt.sessions / 3);
  }
  if (opt.requests > 0) s.requests = opt.requests;
  if (opt.cancel_prob >= 0) s.cancel_prob = opt.cancel_prob;
  if (opt.queue_depth > 0) s.queue_depth = opt.queue_depth;
  return s;
}

/// Builds the k-th request of one session, deterministic in (seed, session,
/// k). The request's priority class doubles as the latency-report class.
net::WireRequest make_request(const std::string& scenario, const Scenario& sc,
                              int session, int k, std::mt19937_64& rng) {
  net::WireRequest req;
  req.verb = "submit";
  req.tenant = "tenant" + std::to_string(session % 3);
  // Deterministic label: the recover harness joins a crashed run against its
  // uninterrupted control by label to compare solution signatures.
  req.label = "s" + std::to_string(session) + "r" + std::to_string(k);
  if (scenario == "mixed") {
    if (session < sc.interactive_sessions) {
      // Interactive class: tiny instance, tiny declared budget -- the
      // backfill signal the priority policy orders by.
      req.workload = (k % 2) ? "fig10" : "fig9";
      req.priority = service::kPriorityInteractive;
      req.time_limit_seconds = 0.05;
    } else {
      // Batch class: large generated instance (many execution paths) solved
      // as a gain-ladder batch -- one admission slot that holds a worker for
      // a while -- with a large declared budget.
      net::SpecRef spec;
      spec.seed = rng();
      spec.scalls = 14;
      spec.kernels = 5;
      spec.ips = 7;
      spec.branch_groups = 4;
      req.spec = spec;
      req.gains = {-1, -1, -1, -1, -1, -1};
      req.priority = service::kPriorityBatch;
      req.time_limit_seconds = 0.5;
    }
    return req;
  }
  if (scenario == "storm") {
    static const char* kBuiltins[] = {"fig9", "fig10", "jpeg_encoder", "gsm_decoder"};
    if (rng() % 2 == 0) {
      req.workload = kBuiltins[rng() % 4];
    } else {
      net::SpecRef spec;
      spec.seed = rng();
      spec.scalls = 6 + static_cast<int>(rng() % 5);
      spec.kernels = 4;
      spec.ips = 5;
      req.spec = spec;
    }
    req.priority = static_cast<int>(rng() % service::kPriorityClasses);
    if (rng() % 3 == 0) req.deadline_seconds = 0.5 + 0.001 * static_cast<double>(rng() % 1000);
    req.time_limit_seconds = 0.2;
    return req;
  }
  // smoke
  req.workload = (k % 2) ? "fig9" : "jpeg_encoder";
  req.time_limit_seconds = 0.1;
  return req;
}

/// Fixed literal required gain per built-in (all comfortably feasible), so
/// exact repeats of the same built-in collide on the cache key by
/// construction and perturbations stay near a feasible operating point.
std::int64_t builtin_gain(const std::string& workload) {
  if (workload == "fig9" || workload == "fig10" || workload == "adpcm_codec") {
    return 10000;
  }
  return 50000;
}

/// Per-session request stream with cross-request repetition (see the header
/// comment): issued requests are replayed verbatim (--repeat-fraction) or
/// with a shifted gain (--perturb-fraction).
struct RequestStream {
  std::vector<net::WireRequest> issued;

  net::WireRequest next(const std::string& scenario, const Scenario& sc, int session,
                        int k, std::mt19937_64& rng, const Options& opt) {
    const double roll = std::uniform_real_distribution<double>(0, 1)(rng);
    if (!issued.empty() && roll < opt.repeat_fraction) {
      return issued[rng() % issued.size()];
    }
    if (!issued.empty() && roll < opt.repeat_fraction + opt.perturb_fraction) {
      net::WireRequest req = issued[rng() % issued.size()];
      if (req.gains.empty() && req.required_gain > 0) {
        req.required_gain += 1 + static_cast<std::int64_t>(rng() % 7);
      }
      return req;
    }
    net::WireRequest req = make_request(scenario, sc, session, k, rng);
    if (opt.repeat_fraction + opt.perturb_fraction > 0 && req.gains.empty() &&
        !req.workload.empty()) {
      req.required_gain = builtin_gain(req.workload);
    }
    issued.push_back(req);
    return req;
  }
};

// --- session drivers --------------------------------------------------------

struct SharedRun {
  std::mutex mu;
  std::vector<Rec> recs;
  std::uint64_t lost = 0;
  std::uint64_t interrupted = 0;
  std::uint64_t submitted = 0;
};

void record(SharedRun& out, Rec r) {
  std::lock_guard<std::mutex> lk(out.mu);
  out.recs.push_back(std::move(r));
}

/// Closed loop: submit -> (maybe cancel) -> wait -> next. Latency spans the
/// full submit->terminal round trip as the client saw it.
void session_closed(const std::string& endpoint, const std::string& scenario,
                    const Scenario& sc, int session, const Options& opt,
                    SharedRun& out) {
  net::WireClient client;
  std::string err;
  if (!client.connect(endpoint, &err)) {
    std::fprintf(stderr, "partita_loadgen: session %d: %s\n", session, err.c_str());
    return;
  }
  std::mt19937_64 rng(opt.seed * 1000003 + static_cast<std::uint64_t>(session));
  RequestStream stream;
  for (int k = 0; k < sc.requests; ++k) {
    net::WireRequest req = stream.next(scenario, sc, session, k, rng, opt);
    const int klass = req.priority;
    const auto t0 = SteadyClock::now();
    {
      std::lock_guard<std::mutex> lk(out.mu);
      ++out.submitted;
    }
    auto sub = client.call(req, &err);
    if (!sub || !sub->ok) {
      std::lock_guard<std::mutex> lk(out.mu);
      // Under --recover, a dead connection is an interruption, not a loss:
      // the write-ahead journal is the authority on whether the request was
      // acknowledged, and --verify-journal settles its fate after recovery.
      if (!sub && opt.recover) ++out.interrupted; else ++out.lost;
      if (!sub) return;  // connection gone; remaining requests never submitted
      continue;
    }
    if (sub->state == "rejected") {
      record(out, {klass, ms_since(t0), "rejected", ""});
      continue;
    }
    const std::uint64_t ticket = sub->tickets.empty() ? 0 : sub->tickets.front();
    if (sc.cancel_prob > 0 &&
        std::uniform_real_distribution<double>(0, 1)(rng) < sc.cancel_prob) {
      net::WireRequest c;
      c.verb = "cancel";
      c.ticket = ticket;
      client.call(c, &err);  // best effort; the wait below is authoritative
    }
    net::WireRequest w;
    w.verb = "wait";
    w.ticket = ticket;
    auto done = client.call(w, &err);
    if (!done || !done->result) {
      std::lock_guard<std::mutex> lk(out.mu);
      if (!done && opt.recover) ++out.interrupted; else ++out.lost;
      if (!done) return;
      continue;
    }
    record(out, {klass, ms_since(t0), done->result->state, done->result->cache});
  }
}

/// Open loop: submissions are paced by wall clock, not completions; waits
/// stream back asynchronously over the same connection (id multiplexing).
void session_open(const std::string& endpoint, const std::string& scenario,
                  const Scenario& sc, int session, const Options& opt,
                  SharedRun& out) {
  net::WireClient client;
  std::string err;
  if (!client.connect(endpoint, &err)) {
    std::fprintf(stderr, "partita_loadgen: session %d: %s\n", session, err.c_str());
    return;
  }
  std::mt19937_64 rng(opt.seed * 1000003 + static_cast<std::uint64_t>(session));
  struct InFlight {
    int klass;
    SteadyClock::time_point t0;
  };
  std::map<std::uint64_t, InFlight> waiting;  // wait-id -> submit time
  RequestStream stream;
  for (int k = 0; k < sc.requests; ++k) {
    if (k > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(opt.open_gap_ms));
    }
    net::WireRequest req = stream.next(scenario, sc, session, k, rng, opt);
    const int klass = req.priority;
    const auto t0 = SteadyClock::now();
    {
      std::lock_guard<std::mutex> lk(out.mu);
      ++out.submitted;
    }
    auto sub = client.call(req, &err);  // admission answers immediately
    if (!sub || !sub->ok) {
      std::lock_guard<std::mutex> lk(out.mu);
      if (!sub && opt.recover) ++out.interrupted; else ++out.lost;
      if (!sub) break;
      continue;
    }
    if (sub->state == "rejected") {
      record(out, {klass, ms_since(t0), "rejected", ""});
      continue;
    }
    const std::uint64_t ticket = sub->tickets.empty() ? 0 : sub->tickets.front();
    if (sc.cancel_prob > 0 &&
        std::uniform_real_distribution<double>(0, 1)(rng) < sc.cancel_prob) {
      net::WireRequest c;
      c.verb = "cancel";
      c.ticket = ticket;
      client.send(c, &err);  // response collected (and ignored) below
    }
    net::WireRequest w;
    w.verb = "wait";
    w.ticket = ticket;
    const std::uint64_t wid = client.send(w, &err);
    if (wid == 0) {
      std::lock_guard<std::mutex> lk(out.mu);
      if (opt.recover) ++out.interrupted; else ++out.lost;
      break;
    }
    waiting.emplace(wid, InFlight{klass, t0});
  }
  // Collect: every frame is timestamped at arrival, so latency is honest
  // even when responses come back out of order.
  while (!waiting.empty()) {
    auto resp = client.recv(&err);
    if (!resp) {
      std::lock_guard<std::mutex> lk(out.mu);
      if (opt.recover) out.interrupted += waiting.size(); else out.lost += waiting.size();
      break;
    }
    auto it = waiting.find(resp->id);
    if (it == waiting.end()) continue;  // cancel ack or stray
    if (resp->result) {
      record(out, {it->second.klass, ms_since(it->second.t0), resp->result->state,
                   resp->result->cache});
    } else {
      std::lock_guard<std::mutex> lk(out.mu);
      ++out.lost;
    }
    waiting.erase(it);
  }
}

RunResult run_scenario(const std::string& endpoint, const std::string& policy_label,
                       const std::string& scenario, const Scenario& sc,
                       const Options& opt) {
  SharedRun shared;
  const auto t0 = SteadyClock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(sc.sessions));
  const bool open = opt.arrival.rfind("open", 0) == 0;
  for (int s = 0; s < sc.sessions; ++s) {
    threads.emplace_back([&, s] {
      if (open) {
        session_open(endpoint, scenario, sc, s, opt, shared);
      } else {
        session_closed(endpoint, scenario, sc, s, opt, shared);
      }
    });
  }
  for (auto& t : threads) t.join();

  RunResult r;
  r.policy = policy_label;
  r.seconds = ms_since(t0) / 1000.0;
  r.recs = std::move(shared.recs);
  r.lost = shared.lost;
  r.interrupted = shared.interrupted;
  r.submitted = shared.submitted;
  return r;
}

// --- reporting --------------------------------------------------------------

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double idx = p * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1 - frac) + xs[hi] * frac;
}

/// Latencies of requests that actually ran (rejected ones return in
/// microseconds and would drag the percentiles down artificially).
std::vector<double> served_latencies(const RunResult& r, int klass /* -1 = all */) {
  std::vector<double> xs;
  for (const Rec& rec : r.recs) {
    if (rec.state == "rejected") continue;
    if (klass >= 0 && rec.klass != klass) continue;
    xs.push_back(rec.ms);
  }
  return xs;
}

std::uint64_t count_state(const RunResult& r, const char* state) {
  std::uint64_t n = 0;
  for (const Rec& rec : r.recs) n += rec.state == state ? 1 : 0;
  return n;
}

/// Solution-cache outcome tallies of one run, from the per-request markers.
struct CacheTally {
  std::uint64_t hit = 0, neighbor = 0, miss = 0, bypass = 0;
  std::uint64_t probed() const { return hit + neighbor + miss; }
  double hit_rate() const {
    return probed() > 0 ? static_cast<double>(hit) / static_cast<double>(probed()) : 0.0;
  }
};

CacheTally cache_tally(const RunResult& r) {
  CacheTally t;
  for (const Rec& rec : r.recs) {
    if (rec.cache == "hit") ++t.hit;
    else if (rec.cache == "neighbor") ++t.neighbor;
    else if (rec.cache == "miss") ++t.miss;
    else if (rec.cache == "bypass") ++t.bypass;
  }
  return t;
}

std::string result_json(const RunResult& r) {
  namespace json = support::json;
  using json::fmt_double;
  const std::vector<double> all = served_latencies(r, -1);
  std::ostringstream os;
  os << "{\"requests\": " << r.submitted << ", \"seconds\": " << fmt_double(r.seconds)
     << ", \"requests_per_sec\": "
     << fmt_double(r.seconds > 0 ? static_cast<double>(r.submitted) / r.seconds : 0)
     << ", \"p50_ms\": " << fmt_double(percentile(all, 0.50))
     << ", \"p99_ms\": " << fmt_double(percentile(all, 0.99))
     << ", \"completed\": " << count_state(r, "completed")
     << ", \"cancelled\": " << count_state(r, "cancelled")
     << ", \"rejected\": " << count_state(r, "rejected")
     << ", \"failed\": " << count_state(r, "failed") << ", \"lost\": " << r.lost;
  if (r.interrupted > 0) os << ", \"interrupted\": " << r.interrupted;
  if (const CacheTally t = cache_tally(r); t.probed() + t.bypass > 0) {
    os << ", \"cache\": {\"hit\": " << t.hit << ", \"neighbor\": " << t.neighbor
       << ", \"miss\": " << t.miss << ", \"bypass\": " << t.bypass
       << ", \"hit_rate\": " << fmt_double(t.hit_rate()) << "}";
  }
  os << ", \"classes\": {";
  bool first = true;
  for (int klass = 0; klass < service::kPriorityClasses; ++klass) {
    const std::vector<double> xs = served_latencies(r, klass);
    if (xs.empty()) continue;
    if (!first) os << ", ";
    first = false;
    os << json::quote(service::priority_name(klass)) << ": {\"requests\": " << xs.size()
       << ", \"p50_ms\": " << fmt_double(percentile(xs, 0.50))
       << ", \"p99_ms\": " << fmt_double(percentile(xs, 0.99)) << "}";
  }
  os << "}}";
  return os.str();
}

void print_summary(const RunResult& r) {
  const std::vector<double> all = served_latencies(r, -1);
  std::printf("%-10s %4llu reqs in %6.2fs  %7.1f req/s  p50 %8.2fms  p99 %8.2fms"
              "  [c=%llu x=%llu r=%llu f=%llu lost=%llu int=%llu]\n",
              r.policy.c_str(), static_cast<unsigned long long>(r.submitted), r.seconds,
              r.seconds > 0 ? static_cast<double>(r.submitted) / r.seconds : 0.0,
              percentile(all, 0.50), percentile(all, 0.99),
              static_cast<unsigned long long>(count_state(r, "completed")),
              static_cast<unsigned long long>(count_state(r, "cancelled")),
              static_cast<unsigned long long>(count_state(r, "rejected")),
              static_cast<unsigned long long>(count_state(r, "failed")),
              static_cast<unsigned long long>(r.lost),
              static_cast<unsigned long long>(r.interrupted));
  for (int klass = 0; klass < service::kPriorityClasses; ++klass) {
    const std::vector<double> xs = served_latencies(r, klass);
    if (xs.empty()) continue;
    std::printf("           %-12s %4zu reqs  p50 %8.2fms  p99 %8.2fms\n",
                service::priority_name(klass), xs.size(), percentile(xs, 0.50),
                percentile(xs, 0.99));
  }
  if (const CacheTally t = cache_tally(r); t.probed() + t.bypass > 0) {
    std::printf("           cache: %llu hit / %llu neighbor / %llu miss / "
                "%llu bypass (hit rate %.2f)\n",
                static_cast<unsigned long long>(t.hit),
                static_cast<unsigned long long>(t.neighbor),
                static_cast<unsigned long long>(t.miss),
                static_cast<unsigned long long>(t.bypass), t.hit_rate());
  }
}

/// Splices a "serve" section into the (possibly existing) partita-bench-v1
/// record at `path`; creates a fresh record when absent.
bool write_bench(const std::string& path, const std::string& scenario,
                 const std::string& arrival, const std::vector<RunResult>& runs) {
  std::ostringstream serve;
  serve << "\"serve\": {\"scenario\": " << support::json::quote(scenario)
        << ", \"arrival\": " << support::json::quote(arrival) << ", \"results\": {";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (i) serve << ", ";
    serve << support::json::quote(runs[i].policy) << ": " << result_json(runs[i]);
  }
  serve << "}}";

  std::string existing;
  {
    std::ifstream in(path);
    if (in) {
      std::stringstream ss;
      ss << in.rdbuf();
      existing = ss.str();
    }
  }
  std::string out;
  const std::size_t close = existing.rfind('}');
  if (close != std::string::npos) {
    // Append as one more top-level key of the existing record (a repeated
    // "serve" key is tolerated; last one wins on parse).
    out = existing.substr(0, close);
    while (!out.empty() && (out.back() == '\n' || out.back() == ' ')) out.pop_back();
    out += ",\n  " + serve.str() + "\n}\n";
  } else {
    const bench::MachineMeta meta = bench::collect_machine_meta();
    out = "{\n  \"metadata\": " + bench::meta_json(meta) + ",\n  " + serve.str() + "\n}\n";
  }
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << out;
  return true;
}

/// Gate: overall p99 across runs must stay under serve.p99_ms_max of the
/// baseline record. Missing key = gate skipped (same spirit as bench_all).
int check_baseline(const std::string& path, const std::vector<RunResult>& runs) {
  namespace json = support::json;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "partita_loadgen: cannot read baseline %s\n", path.c_str());
    return 1;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  std::string err;
  auto doc = json::parse(ss.str(), &err);
  if (!doc || !doc->is_object()) {
    std::fprintf(stderr, "partita_loadgen: bad baseline: %s\n", err.c_str());
    return 1;
  }
  const json::Object* serve = json::object_or_null(doc->object(), "serve");
  int rc = 0;
  const double ceiling = serve ? json::num_or(*serve, "p99_ms_max", -1) : -1;
  if (ceiling <= 0) {
    std::fprintf(stderr, "partita_loadgen: baseline lacks serve.p99_ms_max; gate skipped\n");
  } else {
    double worst = 0;
    for (const RunResult& r : runs) {
      worst = std::max(worst, percentile(served_latencies(r, -1), 0.99));
    }
    std::printf("gate serve.p99_ms: ceiling %.0f, observed %.1f\n", ceiling, worst);
    if (worst > ceiling) {
      std::fprintf(stderr, "partita_loadgen: REGRESSION: p99 %.1fms over ceiling %.0fms\n",
                   worst, ceiling);
      rc = 1;
    }
  }

  // Minimum cache hit rate, aggregated over every run's probed requests.
  // Only meaningful against cache-enabled repeat traffic; with no probed
  // requests (cacheless server or no repeats) the gate is skipped.
  const double min_rate = serve ? json::num_or(*serve, "cache_hit_rate_min", -1) : -1;
  if (min_rate >= 0) {
    CacheTally total;
    for (const RunResult& r : runs) {
      const CacheTally t = cache_tally(r);
      total.hit += t.hit;
      total.neighbor += t.neighbor;
      total.miss += t.miss;
      total.bypass += t.bypass;
    }
    if (total.probed() == 0) {
      std::fprintf(stderr,
                   "partita_loadgen: no cache-probed requests; hit-rate gate skipped\n");
    } else {
      std::printf("gate serve.cache_hit_rate: floor %.2f, observed %.2f "
                  "(%llu/%llu)\n",
                  min_rate, total.hit_rate(),
                  static_cast<unsigned long long>(total.hit),
                  static_cast<unsigned long long>(total.probed()));
      if (total.hit_rate() < min_rate) {
        std::fprintf(stderr,
                     "partita_loadgen: REGRESSION: cache hit rate %.2f under floor %.2f\n",
                     total.hit_rate(), min_rate);
        rc = 1;
      }
    }
  }
  return rc;
}

// --- journal verification ---------------------------------------------------

/// Settles a kill-and-recover run from the journal itself: polls recover()
/// (a read-only scan, safe while the recovered daemon still appends) until
/// no admit is undecided, then asserts every admitted item reached exactly
/// one terminal STATE. At-least-once execution may write the same terminal
/// record twice (a replayed batch re-finishes items that were already
/// decided); what must never happen is two CONFLICTING terminal states for
/// one admitted item, or an item with none at all. Completed terminals are
/// dumped as sorted `terminal completed LABEL SIGNATURE` lines so the CI
/// recover job can diff signatures against an uninterrupted control run.
int verify_journal_dir(const std::string& dir, double timeout_s) {
  service::JournalRecovery rec;
  const auto t0 = SteadyClock::now();
  for (;;) {
    rec = service::Journal::recover(dir);
    if (rec.undecided.empty()) break;
    if (ms_since(t0) / 1000.0 > timeout_s) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("journal %s: %zu segments, %zu records salvaged, %zu records + "
              "%zu bytes dropped\n",
              dir.c_str(), rec.segments, rec.records_salvaged,
              rec.records_dropped, rec.bytes_dropped);
  int rc = 0;
  if (!rec.undecided.empty()) {
    std::fprintf(stderr,
                 "partita_loadgen: FAILED: %zu acknowledged admits still lack "
                 "a terminal state after %.0fs:",
                 rec.undecided.size(), timeout_s);
    for (const service::JournalRecord& r : rec.undecided)
      std::fprintf(stderr, " seq=%llu", static_cast<unsigned long long>(r.seq));
    std::fprintf(stderr, "\n");
    rc = 1;
  }
  // Exactly-one-terminal-STATE: distinct (state, signature) values per item.
  std::map<std::pair<std::uint64_t, std::size_t>,
           std::set<std::pair<std::string, std::string>>> outcomes;
  for (const service::JournalTerminal& t : rec.terminals)
    outcomes[{t.seq, t.item}].insert({t.state, t.signature});
  for (const auto& [key, states] : outcomes) {
    if (states.size() <= 1) continue;
    std::fprintf(stderr,
                 "partita_loadgen: FAILED: admit seq=%llu item=%zu has %zu "
                 "conflicting terminal states\n",
                 static_cast<unsigned long long>(key.first), key.second,
                 states.size());
    rc = 1;
  }
  // Deterministic dump for cross-run signature comparison (dedup: re-executed
  // items repeat identical lines).
  std::set<std::tuple<std::string, std::string, std::string>> lines;
  for (const service::JournalTerminal& t : rec.terminals)
    lines.insert({t.state, t.label, t.signature});
  for (const auto& [state, label, signature] : lines)
    std::printf("terminal %s %s %s\n", state.c_str(), label.c_str(),
                signature.c_str());
  std::printf("journal verdict: %s (%zu items decided)\n",
              rc == 0 ? "exactly-one-terminal-state holds" : "FAILED",
              outcomes.size());
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "partita_loadgen: %s needs a value\n", flag.c_str());
        std::exit(kExitUsage);
      }
      return argv[++i];
    };
    if (flag == "--connect") opt.connect = need_value();
    else if (flag == "--policies") {
      opt.policies.clear();
      std::istringstream ps(need_value());
      std::string p;
      while (std::getline(ps, p, ',')) {
        if (!p.empty()) opt.policies.push_back(p);
      }
      if (opt.policies.empty()) usage();
    } else if (flag == "--scenario") opt.scenario = need_value();
    else if (flag == "--arrival") {
      opt.arrival = need_value();
      if (opt.arrival.rfind("open:", 0) == 0) {
        opt.open_gap_ms = std::atof(opt.arrival.c_str() + 5);
        opt.arrival = "open";
      } else if (opt.arrival != "closed" && opt.arrival != "open") {
        usage();
      }
    } else if (flag == "--sessions") opt.sessions = std::atoi(need_value());
    else if (flag == "--requests") opt.requests = std::atoi(need_value());
    else if (flag == "--cancel-prob") opt.cancel_prob = std::atof(need_value());
    else if (flag == "--seed") opt.seed = std::strtoull(need_value(), nullptr, 10);
    else if (flag == "--workers") opt.workers = std::atoi(need_value());
    else if (flag == "--queue-depth")
      opt.queue_depth = static_cast<std::size_t>(std::atoll(need_value()));
    else if (flag == "--out") opt.out_path = need_value();
    else if (flag == "--no-out") opt.no_out = true;
    else if (flag == "--check") opt.check_path = need_value();
    else if (flag == "--require-priority-win") opt.require_priority_win = true;
    else if (flag == "--repeat-fraction") opt.repeat_fraction = std::atof(need_value());
    else if (flag == "--perturb-fraction") opt.perturb_fraction = std::atof(need_value());
    else if (flag == "--cache") opt.cache = true;
    else if (flag == "--kill-after") opt.kill_after_ms = std::atof(need_value());
    else if (flag == "--kill-pid") opt.kill_pid = std::atol(need_value());
    else if (flag == "--recover") opt.recover = true;
    else if (flag == "--verify-journal") opt.verify_journal = need_value();
    else if (flag == "--verify-timeout") opt.verify_timeout_s = std::atof(need_value());
    else usage();
  }
  if (!opt.verify_journal.empty()) {
    return verify_journal_dir(opt.verify_journal, opt.verify_timeout_s);
  }
  if (opt.kill_after_ms > 0 && (opt.kill_pid <= 0 || opt.connect.empty())) {
    std::fprintf(stderr,
                 "partita_loadgen: --kill-after needs --kill-pid and --connect\n");
    return kExitUsage;
  }
  if (opt.repeat_fraction < 0 || opt.perturb_fraction < 0 ||
      opt.repeat_fraction + opt.perturb_fraction > 1.0) {
    std::fprintf(stderr,
                 "partita_loadgen: --repeat-fraction + --perturb-fraction must "
                 "stay within [0, 1]\n");
    return kExitUsage;
  }
  if (opt.repeat_fraction + opt.perturb_fraction > 0) opt.cache = true;
  const Scenario sc = scenario_defaults(opt.scenario, opt);

  std::vector<RunResult> runs;
  if (!opt.connect.empty()) {
    // Remote mode: ask the server which policy it runs for the record label.
    net::WireClient probe;
    std::string err;
    if (!probe.connect(opt.connect, &err)) {
      std::fprintf(stderr, "partita_loadgen: %s\n", err.c_str());
      return kExitConnect;
    }
    net::WireRequest s;
    s.verb = "stats";
    auto stats = probe.call(s, &err);
    const std::string label = stats && !stats->policy.empty() ? stats->policy : "remote";
    probe.close();
    // Kill-and-recover: a timer thread SIGKILLs the daemon mid-storm --
    // simulated power loss at an arbitrary point in the request stream.
    std::thread killer;
    if (opt.kill_after_ms > 0) {
      killer = std::thread([&opt] {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(opt.kill_after_ms));
        ::kill(static_cast<pid_t>(opt.kill_pid), SIGKILL);
        std::printf("partita_loadgen: SIGKILLed pid %ld after %.0fms\n",
                    opt.kill_pid, opt.kill_after_ms);
      });
    }
    runs.push_back(run_scenario(opt.connect, label, opt.scenario, sc, opt));
    if (killer.joinable()) killer.join();
  } else {
    for (const std::string& policy : opt.policies) {
      service::ServiceConfig cfg;
      cfg.workers = opt.workers;
      cfg.policy = policy;
      cfg.max_queue_depth = sc.queue_depth;
      cfg.cache_enabled = opt.cache;
      if (!service::SchedulerPolicy::create(policy, {})) {
        std::fprintf(stderr, "partita_loadgen: unknown policy '%s'\n", policy.c_str());
        return kExitUsage;
      }
      service::SolveService svc(cfg);
      net::WireServer server(svc);
      std::string err;
      if (!server.start(&err)) {
        std::fprintf(stderr, "partita_loadgen: %s\n", err.c_str());
        return kExitConnect;
      }
      runs.push_back(run_scenario(server.endpoint(), policy, opt.scenario, sc, opt));
      svc.drain();
      server.stop();
    }
  }

  std::printf("scenario=%s arrival=%s sessions=%d requests/session=%d cancel=%.2f\n",
              opt.scenario.c_str(), opt.arrival.c_str(), sc.sessions, sc.requests,
              sc.cancel_prob);
  for (const RunResult& r : runs) print_summary(r);

  int rc = 0;
  std::uint64_t lost = 0, interrupted = 0;
  for (const RunResult& r : runs) {
    lost += r.lost;
    interrupted += r.interrupted;
  }
  if (lost > 0) {
    std::fprintf(stderr, "partita_loadgen: FAILED: %llu lost terminal states\n",
                 static_cast<unsigned long long>(lost));
    rc = 1;
  }
  if (interrupted > 0) {
    std::printf("partita_loadgen: %llu requests interrupted by process death; "
                "settle them with --verify-journal after recovery\n",
                static_cast<unsigned long long>(interrupted));
  }

  if (opt.require_priority_win) {
    const RunResult* fifo = nullptr;
    const RunResult* prio = nullptr;
    for (const RunResult& r : runs) {
      if (r.policy == "fifo") fifo = &r;
      if (r.policy == "priority") prio = &r;
    }
    if (!fifo || !prio) {
      std::fprintf(stderr,
                   "partita_loadgen: --require-priority-win needs --policies "
                   "fifo,priority\n");
      rc = 1;
    } else {
      const double f = percentile(served_latencies(*fifo, service::kPriorityInteractive), 0.99);
      const double p = percentile(served_latencies(*prio, service::kPriorityInteractive), 0.99);
      std::printf("interactive p99: fifo %.2fms vs priority %.2fms (%.2fx)\n", f, p,
                  p > 0 ? f / p : 0.0);
      if (!(p < f)) {
        std::fprintf(stderr,
                     "partita_loadgen: FAILED: priority did not beat fifo on "
                     "interactive p99\n");
        rc = 1;
      }
    }
  }

  if (!opt.no_out) {
    std::string path = opt.out_path;
    if (path.empty()) {
      path = "BENCH_" + bench::collect_machine_meta().date + ".json";
    }
    if (!write_bench(path, opt.scenario, opt.arrival, runs)) {
      std::fprintf(stderr, "partita_loadgen: cannot write %s\n", path.c_str());
      rc = 1;
    } else {
      std::printf("wrote %s\n", path.c_str());
    }
  }
  if (!opt.check_path.empty()) {
    rc = std::max(rc, check_baseline(opt.check_path, runs));
  }
  return rc;
}

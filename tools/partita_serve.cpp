// partita_serve — the solve-service network daemon.
//
// Boots one service::SolveService behind a net::WireServer speaking
// partita-wire-v1 (see docs/service_wire.md), then parks until SIGTERM or
// SIGINT, on which it drains the service gracefully (every admitted request
// reaches its terminal state), stops the listener and exits 0.
//
//   partita_serve [options]
//
// options:
//   --listen SPEC         tcp:HOST:PORT (PORT 0 = ephemeral) or unix:PATH
//                         (default tcp:127.0.0.1:0)
//   --port-file PATH      write the resolved endpoint (one line) once
//                         listening -- how CI scripts discover the
//                         ephemeral port
//   --policy NAME         fifo | priority | edf | rejecter (default fifo)
//   --workers N           worker-pool size (default 2)
//   --queue-depth N       admission-queue depth (default 16)
//   --max-memory-mb N     aggregate admitted solver-memory budget (0 = off)
//   --max-live-per-tenant N  per-tenant live-request quota (0 = off)
//   --max-sessions N      concurrent connections (default 64)
//   --quarantine-dir D    directory for replayable quarantine fixtures
//   --fault SITE[:n[:crash]]  arm a fault-injection site (repeatable); the
//                         PARTITA_FAULT env var arms one more. A ":crash"
//                         suffix SIGKILLs the process at the trip point
//                         (simulated power loss -- the recovery harness).
//   --cache               enable the cross-request solution cache
//                         (docs/caching.md)
//   --cache-capacity N    cache entry bound (implies --cache; default 256)
//   --cache-mb N          cache byte budget (implies --cache; default 64)
//   --no-neighbor-seeding disable warm-start seeding of near-misses
//   --journal-dir D       enable the write-ahead journal (docs/durability.md):
//                         admits are durable before they are acknowledged,
//                         and on boot every undecided admit found in D is
//                         replayed through normal admission under its
//                         original envelope. The solution-cache snapshot
//                         (D/cache.snapshot) is saved on graceful drain and
//                         reloaded here too.
//   --checkpoint-dir D    branch & bound checkpoint directory (default
//                         <journal-dir>/checkpoints when journaling)
//   --checkpoint-waves N  checkpoint cadence in solver waves (default 8
//                         when journaling; 0 disables)
//
// exit codes: 0 clean shutdown (SIGTERM/SIGINT), 2 usage/bad config,
// 3 bind failure, 4 journal open failure.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include <unistd.h>

#include "net/protocol.hpp"
#include "net/server.hpp"
#include "service/journal.hpp"
#include "service/solve_service.hpp"
#include "support/fault_injection.hpp"
#include "support/io.hpp"

using namespace partita;

namespace {

constexpr int kExitUsage = 2;
constexpr int kExitBind = 3;
constexpr int kExitJournal = 4;

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--listen SPEC] [--port-file PATH] [--policy P]\n"
               "       [--workers N] [--queue-depth N] [--max-memory-mb N]\n"
               "       [--max-live-per-tenant N] [--max-sessions N]\n"
               "       [--quarantine-dir D] [--fault SITE[:n[:crash]]]\n"
               "       [--cache] [--cache-capacity N] [--cache-mb N]\n"
               "       [--no-neighbor-seeding] [--journal-dir D]\n"
               "       [--checkpoint-dir D] [--checkpoint-waves N]\n"
               "\n"
               "SPEC: tcp:HOST:PORT (PORT 0 = ephemeral) or unix:PATH\n"
               "exit: 0 clean shutdown, 2 usage, 3 bind failure,\n"
               "      4 journal open failure\n",
               argv0);
  std::exit(kExitUsage);
}

// SITE[:n[:crash]] -- ":crash" upgrades the trip to a SIGKILL of this
// process (simulated power loss), which is how the kill-and-recover
// harness injects death at exact journal/checkpoint boundaries.
void arm_fault(const std::string& spec_in) {
  std::string spec = spec_in;
  bool crash = false;
  if (spec.size() > 6 && spec.compare(spec.size() - 6, 6, ":crash") == 0) {
    crash = true;
    spec.resize(spec.size() - 6);
  }
  std::uint64_t trip_at = 1;
  if (const std::size_t colon = spec.rfind(':'); colon != std::string::npos &&
      spec.find_first_not_of("0123456789", colon + 1) == std::string::npos &&
      colon + 1 < spec.size()) {
    trip_at = std::strtoull(spec.c_str() + colon + 1, nullptr, 10);
    if (trip_at == 0) trip_at = 1;
    spec.resize(colon);
  }
  support::FaultInjector::instance().arm(spec, trip_at, /*sticky=*/true, crash);
}

int run(int argc, char** argv) {
  service::ServiceConfig cfg;
  net::ServerConfig net_cfg;
  std::string port_file;
  std::string journal_dir;
  std::string checkpoint_dir;
  int checkpoint_waves = -1;  // -1 = default (8 when journaling, else 0)
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "partita_serve: %s needs a value\n", flag.c_str());
        std::exit(kExitUsage);
      }
      return argv[++i];
    };
    if (flag == "--listen") net_cfg.listen = need_value();
    else if (flag == "--port-file") port_file = need_value();
    else if (flag == "--policy") cfg.policy = need_value();
    else if (flag == "--workers") cfg.workers = std::atoi(need_value());
    else if (flag == "--queue-depth")
      cfg.max_queue_depth = static_cast<std::size_t>(std::atoll(need_value()));
    else if (flag == "--max-memory-mb")
      cfg.max_admitted_memory_bytes =
          static_cast<std::size_t>(std::atof(need_value()) * 1024.0 * 1024.0);
    else if (flag == "--max-live-per-tenant")
      cfg.max_live_per_tenant = static_cast<std::size_t>(std::atoll(need_value()));
    else if (flag == "--max-sessions")
      net_cfg.max_sessions = static_cast<std::size_t>(std::atoll(need_value()));
    else if (flag == "--quarantine-dir") cfg.quarantine_dir = need_value();
    else if (flag == "--fault") arm_fault(need_value());
    else if (flag == "--cache") cfg.cache_enabled = true;
    else if (flag == "--cache-capacity") {
      cfg.cache_enabled = true;
      cfg.cache_capacity = static_cast<std::size_t>(std::atoll(need_value()));
    } else if (flag == "--cache-mb") {
      cfg.cache_enabled = true;
      cfg.cache_max_bytes =
          static_cast<std::size_t>(std::atof(need_value()) * 1024.0 * 1024.0);
    } else if (flag == "--no-neighbor-seeding")
      cfg.cache_neighbor_seeding = false;
    else if (flag == "--journal-dir") journal_dir = need_value();
    else if (flag == "--checkpoint-dir") checkpoint_dir = need_value();
    else if (flag == "--checkpoint-waves") checkpoint_waves = std::atoi(need_value());
    else usage(argv[0]);
  }
  if (cfg.workers < 1 || cfg.max_queue_depth < 1) {
    std::fprintf(stderr, "partita_serve: --workers and --queue-depth must be >= 1\n");
    return kExitUsage;
  }
  if (!service::SchedulerPolicy::create(cfg.policy, {})) {
    std::fprintf(stderr, "partita_serve: unknown policy '%s'\n", cfg.policy.c_str());
    return kExitUsage;
  }
  if (const char* env = std::getenv("PARTITA_FAULT"); env && *env) arm_fault(env);

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  // The journal outlives the service on purpose: SolveService::drain()
  // compacts through cfg.journal, so the journal must still be open when
  // svc destructs. Declaration order gives reverse destruction.
  service::Journal journal;
  service::JournalRecovery rec;
  if (!journal_dir.empty()) {
    rec = service::Journal::recover(journal_dir);
    service::Journal::Config jc;
    jc.dir = journal_dir;
    if (!journal.open(jc, rec)) {
      std::fprintf(stderr, "partita_serve: cannot open journal in %s\n",
                   journal_dir.c_str());
      return kExitJournal;
    }
    cfg.journal = &journal;
    if (checkpoint_dir.empty()) checkpoint_dir = journal_dir + "/checkpoints";
    if (checkpoint_waves < 0) checkpoint_waves = 8;
    if (rec.records_dropped != 0 || rec.bytes_dropped != 0)
      std::printf(
          "partita_serve: journal salvage: %llu records kept, %llu records "
          "and %llu bytes dropped past last valid frame\n",
          static_cast<unsigned long long>(rec.records_salvaged),
          static_cast<unsigned long long>(rec.records_dropped),
          static_cast<unsigned long long>(rec.bytes_dropped));
  }
  if (!checkpoint_dir.empty() && (checkpoint_waves > 0 || journal.is_open())) {
    cfg.checkpoint_dir = checkpoint_dir;
    cfg.checkpoint_every_waves = checkpoint_waves > 0 ? checkpoint_waves : 0;
  }

  service::SolveService svc(cfg);

  if (journal.is_open()) {
    // Reload the solution-cache snapshot saved by the previous graceful
    // drain; absence or staleness is fine (generation checks drop stale).
    std::string snap;
    if (cfg.cache_enabled &&
        support::io::read_file(journal_dir + "/cache.snapshot", &snap)) {
      const std::size_t n = svc.import_cache_snapshot(snap);
      if (n != 0)
        std::printf("partita_serve: cache snapshot reloaded (%zu entries)\n", n);
    }
    // Replay every undecided admit through normal admission, oldest first,
    // before the listener opens -- recovered work holds its original
    // envelope and cannot race new clients for its journal seq. Admission
    // can transiently reject (queue depth); retry until the pool drains
    // enough to take it. Replays carry journal_seq, so the service appends
    // no duplicate admit record.
    std::size_t replayed = 0, skipped = 0;
    for (const service::JournalRecord& r : rec.undecided) {
      service::SolveRequest sreq;
      std::string jwhy;
      if (!net::from_journal_payload(r.payload, r.seq, &sreq, &jwhy)) {
        std::fprintf(stderr,
                     "partita_serve: journal seq %llu not replayable: %s\n",
                     static_cast<unsigned long long>(r.seq), jwhy.c_str());
        ++skipped;
        continue;
      }
      for (;;) {
        service::SolveRequest attempt = sreq;
        const service::SubmitOutcome sub = svc.submit(std::move(attempt));
        if (sub.state != service::RequestState::kRejected) break;
        ::usleep(static_cast<useconds_t>(
            (sub.retry_after_seconds > 0.01 ? sub.retry_after_seconds : 0.01) *
            1e6));
      }
      ++replayed;
    }
    if (replayed != 0 || skipped != 0)
      std::printf("partita_serve: journal replay: %zu re-admitted, %zu skipped\n",
                  replayed, skipped);
    std::fflush(stdout);
  }

  net::WireServer server(svc, net_cfg);
  std::string why;
  if (!server.start(&why)) {
    std::fprintf(stderr, "partita_serve: %s\n", why.c_str());
    return kExitBind;
  }
  std::printf("partita_serve: listening on %s (policy=%s workers=%d)\n",
              server.endpoint().c_str(), svc.policy_name(), cfg.workers);
  std::fflush(stdout);
  if (!port_file.empty()) {
    std::ofstream pf(port_file);
    pf << server.endpoint() << "\n";
  }

  while (!g_stop) {
    // Signal-driven shutdown only; the nap keeps the main thread cheap.
    ::usleep(50 * 1000);
  }

  // SIGTERM path: drain first so in-flight waits answer, then unblock the
  // listener and join every session.
  std::printf("partita_serve: draining\n");
  std::fflush(stdout);
  svc.drain();
  server.stop();
  if (journal.is_open() && cfg.cache_enabled) {
    // Persist warm cache entries next to the journal; reload happens on the
    // next boot. Atomic rename, so a crash here leaves the old snapshot.
    const std::string snap = svc.export_cache_snapshot();
    if (!snap.empty())
      support::io::write_file_atomic(journal_dir + "/cache.snapshot", snap);
  }
  const service::ServiceStats st = svc.stats();
  const net::ServerStats ns = server.stats();
  std::printf(
      "partita_serve: done submitted=%llu completed=%llu cancelled=%llu "
      "rejected=%llu failed=%llu sessions=%llu frames=%llu/%llu "
      "protocol-errors=%llu\n",
      static_cast<unsigned long long>(st.submitted),
      static_cast<unsigned long long>(st.completed),
      static_cast<unsigned long long>(st.cancelled),
      static_cast<unsigned long long>(st.rejected),
      static_cast<unsigned long long>(st.failed),
      static_cast<unsigned long long>(ns.sessions_accepted),
      static_cast<unsigned long long>(ns.frames_in),
      static_cast<unsigned long long>(ns.frames_out),
      static_cast<unsigned long long>(ns.protocol_errors));
  if (journal.is_open()) {
    const service::JournalStats js = journal.stats();
    std::printf(
        "partita_serve: journal admits=%llu terminals=%llu rotations=%llu "
        "append-failures=%llu recovered=%llu\n",
        static_cast<unsigned long long>(js.admits),
        static_cast<unsigned long long>(js.terminals),
        static_cast<unsigned long long>(js.rotations),
        static_cast<unsigned long long>(js.append_failures),
        static_cast<unsigned long long>(st.recovered_requests));
  }
  if (!port_file.empty()) ::unlink(port_file.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "partita_serve: fatal: %s\n", e.what());
    return 1;
  } catch (...) {
    std::fprintf(stderr, "partita_serve: fatal: unknown exception\n");
    return 1;
  }
}

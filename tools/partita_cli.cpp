// partita — command-line driver for the IP/interface selection flow.
//
//   partita info   <app> <lib.ip>                  workload summary
//   partita imps   <app> <lib.ip>                  dump the IMP database
//   partita select <app> <lib.ip> --rg N [--problem1] [--max-power P] [--json]
//   partita sweep  <app> <lib.ip> [--steps 8]      paper-style RG ladder
//   partita pareto <app> <lib.ip> [--steps N]      area/gain frontier
//   partita sens   <app> <lib.ip> [--rg N]         per-IP criticality
//   partita report <app> <lib.ip> [--rg N]         generated-ASIP summary
//   partita rtl    <app> <lib.ip> [--rg N]         Verilog emission
//   partita sim    <app> <lib.ip> [--rg N] [--runs 32] [--seed S]
//   partita lint   <app> <lib.ip>                  IP-library sanity check
//
// <app> may be KL (.kl) or MiniC (.c/.mc -- the C-subset frontend), or the
// name of a built-in workload.
//
// Every command also accepts a built-in workload name instead of the two
// file arguments: gsm_encoder, gsm_decoder, jpeg_encoder, fig9, fig10.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cinst/cinst.hpp"
#include "dse/pareto.hpp"
#include "dse/sensitivity.hpp"
#include "frontend/parser.hpp"
#include "iface/fsm.hpp"
#include "iface/lint.hpp"
#include "iplib/loader.hpp"
#include "minic/mc_codegen.hpp"
#include "report/chip_report.hpp"
#include "rtl/verilog.hpp"
#include "select/export.hpp"
#include "select/flow.hpp"
#include "sim/cosim.hpp"
#include "support/fault_injection.hpp"
#include "support/strings.hpp"
#include "support/text_table.hpp"
#include "workloads/workloads.hpp"

using namespace partita;

namespace {

// Documented exit codes: 0 success, 1 infeasible/internal error, 2 usage,
// 3 bad input (unreadable/unparseable/unverifiable), 4 resource-limit
// degradation (a best-effort answer was printed, but a time/memory/node
// budget truncated the search).
constexpr int kExitUsage = 2;
constexpr int kExitInput = 3;
constexpr int kExitDegraded = 4;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <command> <app.kl> <lib.ip> [options]\n"
               "       %s <command> <builtin-workload> [options]\n"
               "\n"
               "commands:\n"
               "  info     show profile, s-calls, paths and library summary\n"
               "  imps     dump the IMP database (every implementation method)\n"
               "  select   optimal selection   --rg N [--problem1] [--max-power P] [--json]\n"
               "  sweep    RG ladder like the paper's tables   [--steps 8] [--problem1]\n"
               "  report   full generated-ASIP report          [--rg N]\n"
               "  sim      co-simulate sw vs accelerated       [--rg N] [--runs 32] [--seed S]\n"
               "  rtl      emit Verilog for the selected design [--rg N]\n"
               "  pareto   area/gain Pareto frontier            [--steps N coarsening]\n"
               "  sens     per-IP criticality analysis          [--rg N]\n"
               "  lint     sanity-check the IP library\n"
               "\n"
               "resource options (solver commands):\n"
               "  --time-limit-ms N   wall-clock budget for the ILP search\n"
               "  --max-solver-mb N   node-arena memory budget for the ILP search\n"
               "\n"
               "builtin workloads: gsm_encoder gsm_decoder jpeg_encoder adpcm_codec fig9 fig10\n"
               "\n"
               "exit codes: 0 ok, 1 infeasible, 2 usage, 3 bad input, 4 degraded by\n"
               "resource limits (best-effort answer printed)\n",
               argv0, argv0);
  std::exit(kExitUsage);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "partita: cannot open '%s'\n", path.c_str());
    std::exit(kExitInput);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct Args {
  std::string command;
  workloads::Workload workload;
  std::optional<std::int64_t> rg;
  int steps = 8;
  bool problem1 = false;
  std::optional<double> max_power;
  int runs = 32;
  std::uint64_t seed = 1;
  bool json = false;
  std::optional<double> time_limit_ms;
  std::optional<double> max_solver_mb;
};

std::optional<workloads::Workload> builtin(const std::string& name) {
  if (name == "gsm_encoder") return workloads::gsm_encoder();
  if (name == "gsm_decoder") return workloads::gsm_decoder();
  if (name == "jpeg_encoder") return workloads::jpeg_encoder();
  if (name == "fig9") return workloads::fig9_case();
  if (name == "fig10") return workloads::fig10_case();
  if (name == "adpcm_codec") return workloads::adpcm_codec();
  return std::nullopt;
}

Args parse_args(int argc, char** argv) {
  if (argc < 3) usage(argv[0]);
  Args args;
  args.command = argv[1];

  int next = 2;
  if (auto wl = builtin(argv[2])) {
    args.workload = std::move(*wl);
    next = 3;
  } else {
    if (argc < 4) usage(argv[0]);
    const std::string app_path = argv[2];
    const std::string app_text = slurp(app_path);
    const std::string lib_text = slurp(argv[3]);
    support::DiagnosticEngine diags;
    // MiniC sources (.c / .mc) go through the C-subset frontend; everything
    // else is treated as KL.
    const bool is_minic = app_path.size() > 2 &&
                          (app_path.rfind(".c") == app_path.size() - 2 ||
                           app_path.rfind(".mc") == app_path.size() - 3);
    auto module = is_minic ? minic::mc_compile_source(app_text, "minic_app", diags)
                           : frontend::parse_module(app_text, diags);
    auto library = iplib::load_library(lib_text, diags);
    if (!module || !library) {
      std::fprintf(stderr, "%s", diags.render_all().c_str());
      std::exit(kExitInput);
    }
    args.workload = {argv[2], std::move(*module), std::move(*library)};
    next = 4;
  }

  for (int i = next; i < argc; ++i) {
    const std::string flag = argv[i];
    auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "partita: %s needs a value\n", flag.c_str());
        std::exit(kExitUsage);
      }
      return argv[++i];
    };
    if (flag == "--rg") args.rg = std::atoll(need_value());
    else if (flag == "--steps") args.steps = std::atoi(need_value());
    else if (flag == "--problem1") args.problem1 = true;
    else if (flag == "--json") args.json = true;
    else if (flag == "--max-power") args.max_power = std::atof(need_value());
    else if (flag == "--runs") args.runs = std::atoi(need_value());
    else if (flag == "--seed") args.seed = static_cast<std::uint64_t>(std::atoll(need_value()));
    else if (flag == "--time-limit-ms") args.time_limit_ms = std::atof(need_value());
    else if (flag == "--max-solver-mb") args.max_solver_mb = std::atof(need_value());
    else {
      std::fprintf(stderr, "partita: unknown option '%s'\n", flag.c_str());
      std::exit(kExitUsage);
    }
  }
  if (args.steps < 1 || args.steps > 64) {
    std::fprintf(stderr, "partita: --steps must be 1..64\n");
    std::exit(kExitUsage);
  }
  if (args.runs < 1 || args.runs > 100000) {
    std::fprintf(stderr, "partita: --runs must be 1..100000\n");
    std::exit(kExitUsage);
  }
  if (args.time_limit_ms && *args.time_limit_ms <= 0) {
    std::fprintf(stderr, "partita: --time-limit-ms must be positive\n");
    std::exit(kExitUsage);
  }
  if (args.max_solver_mb && *args.max_solver_mb <= 0) {
    std::fprintf(stderr, "partita: --max-solver-mb must be positive\n");
    std::exit(kExitUsage);
  }
  return args;
}

select::SelectOptions select_options(const Args& args) {
  select::SelectOptions opt;
  opt.problem2 = !args.problem1;
  opt.max_power = args.max_power;
  if (args.time_limit_ms) opt.ilp.budget.time_limit_seconds = *args.time_limit_ms / 1000.0;
  if (args.max_solver_mb) {
    opt.ilp.budget.memory_limit_bytes =
        static_cast<std::size_t>(*args.max_solver_mb * 1024.0 * 1024.0);
  }
  return opt;
}

// Resource-limit degradation maps to its own exit code so scripts can tell
// "optimal answer" (0) apart from "best effort under a budget" (4).
int success_exit(const select::Selection& sel) {
  if (sel.truncated && (sel.solver.termination == ilp::TerminationReason::kDeadline ||
                        sel.solver.termination == ilp::TerminationReason::kMemoryLimit)) {
    return kExitDegraded;
  }
  return 0;
}

int cmd_info(const Args& args, select::Flow& flow) {
  const workloads::Workload& w = args.workload;
  std::printf("workload      : %s\n", w.name.c_str());
  std::printf("functions     : %zu\n", w.module.function_count());
  std::printf("call sites    : %zu\n", w.module.call_sites().size());
  std::printf("s-calls       : %zu\n", flow.scalls().size());
  std::printf("exec paths    : %zu\n", flow.paths().size());
  std::printf("IPs           : %zu\n", w.library.size());
  std::printf("IMPs          : %zu\n", flow.imp_database().imps().size());
  std::printf("sw cycles/run : %s\n",
              support::with_commas(flow.profile().total_cycles).c_str());
  std::printf("max gain      : %s\n",
              support::with_commas(flow.max_feasible_gain(select_options(args))).c_str());
  std::printf("\ns-calls:\n");
  for (const isel::SCall& sc : flow.scalls()) {
    std::printf("  SC%u %-14s T_SW=%-10lld freq=%g\n", sc.site.value(),
                sc.callee_name.c_str(), static_cast<long long>(sc.t_sw), sc.frequency);
  }
  return 0;
}

int cmd_imps(const Args& args, select::Flow& flow) {
  std::fputs(flow.imp_database().dump(args.workload.library).c_str(), stdout);
  return 0;
}

int cmd_select(const Args& args, select::Flow& flow) {
  const select::SelectOptions opt = select_options(args);
  const std::int64_t gmax = flow.max_feasible_gain(opt);
  const std::int64_t rg = args.rg.value_or(gmax / 2);
  const select::Selection sel = flow.select(rg, opt);
  if (args.json) {
    std::fputs(select::to_json(sel, flow.imp_database(), args.workload.library, rg).c_str(),
               stdout);
    return sel.feasible ? success_exit(sel) : 1;
  }
  std::printf("required gain : %s (max feasible %s)\n", support::with_commas(rg).c_str(),
              support::with_commas(gmax).c_str());
  if (!sel.feasible) {
    std::printf("INFEASIBLE (%s)\n", sel.degradation_detail.c_str());
    return 1;
  }
  std::printf("selection     : %s\n",
              sel.describe(flow.imp_database(), args.workload.library).c_str());
  std::printf("guaranteed G  : %s\n", support::with_commas(sel.min_path_gain).c_str());
  std::printf("area          : %.3f (IP %.3f + interface %.3f)\n", sel.total_area(),
              sel.ip_area, sel.interface_area);
  std::printf("power         : %.3f\n", sel.total_power());
  std::printf("S-instructions: %d for %d s-calls\n", sel.s_instructions,
              sel.selected_scalls);
  std::printf("solver        : %d nodes, %d LP iterations, %.0f%% warm hits, %d threads\n",
              sel.solver.nodes, sel.solver.lp_iterations,
              sel.solver.warm_start_hit_rate() * 100.0, sel.solver.threads);
  std::printf("quality       : %s", select::to_string(sel.rung));
  if (sel.truncated) {
    std::printf(" [%s; gap <= %.2f%%%s]", ilp::to_string(sel.solver.termination),
                sel.optimality_gap * 100.0,
                sel.greedy_fallback ? "; greedy fallback applied" : "");
  }
  std::printf("\n");
  return success_exit(sel);
}

int cmd_sweep(const Args& args, select::Flow& flow) {
  const select::SelectOptions opt = select_options(args);
  const std::int64_t gmax = flow.max_feasible_gain(opt);
  // The whole RG ladder is one batch solve: the model build, presolve clique
  // table and root bases are shared across the steps (bit-identical to the
  // per-step select() calls this loop used to make, just faster).
  std::vector<std::int64_t> rgs;
  rgs.reserve(static_cast<std::size_t>(args.steps));
  for (int k = 1; k <= args.steps; ++k) rgs.push_back(gmax * k / args.steps);
  const std::vector<select::Selection> sweep = flow.select_batch(rgs, opt);

  support::TextTable t({"RG", "G", "A", "S", "O", "implementation"});
  t.set_alignment({support::Align::kRight, support::Align::kRight, support::Align::kRight,
                   support::Align::kRight, support::Align::kRight, support::Align::kLeft});
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const std::int64_t rg = rgs[i];
    const select::Selection& sel = sweep[i];
    if (!sel.feasible) {
      t.add_row({support::with_commas(rg), "-", "-", "-", "-", "(infeasible)"});
      continue;
    }
    t.add_row({support::with_commas(rg), support::with_commas(sel.min_path_gain),
               support::compact_double(sel.total_area()),
               std::to_string(sel.s_instructions), std::to_string(sel.selected_scalls),
               sel.describe(flow.imp_database(), args.workload.library)});
  }
  std::fputs(t.render().c_str(), stdout);
  return 0;
}

int cmd_report(const Args& args, select::Flow& flow) {
  const select::SelectOptions opt = select_options(args);
  const std::int64_t gmax = flow.max_feasible_gain(opt);
  const std::int64_t rg = args.rg.value_or(gmax * 3 / 5);
  const select::Selection sel = flow.select(rg, opt);
  // Infeasible selections still render: generate_report() produces a
  // structured infeasibility report instead of aborting.
  const report::ChipReport rep = report::generate_report(flow, sel);
  std::fputs(rep.text.c_str(), stdout);
  return sel.feasible ? success_exit(sel) : 1;
}

int cmd_sim(const Args& args, select::Flow& flow) {
  const select::SelectOptions opt = select_options(args);
  const std::int64_t gmax = flow.max_feasible_gain(opt);
  const std::int64_t rg = args.rg.value_or(gmax / 2);
  const select::Selection sel = flow.select(rg, opt);
  if (!sel.feasible) {
    std::printf("INFEASIBLE at RG=%s\n", support::with_commas(rg).c_str());
    return 1;
  }
  const workloads::Workload& w = args.workload;
  sim::CoSimulator cosim(w.module, w.library, flow.imp_database(), flow.entry_cdfg(),
                         flow.paths());
  support::Rng r1(args.seed), r2(args.seed);
  const sim::SimResult sw = cosim.run_average(nullptr, r1, static_cast<std::size_t>(args.runs));
  const sim::SimResult hw = cosim.run_average(&sel, r2, static_cast<std::size_t>(args.runs));
  std::printf("runs          : %d (seed %llu)\n", args.runs,
              static_cast<unsigned long long>(args.seed));
  std::printf("software      : %s cycles\n", support::with_commas(sw.total_cycles).c_str());
  std::printf("accelerated   : %s cycles\n", support::with_commas(hw.total_cycles).c_str());
  std::printf("measured gain : %s (guaranteed %s)\n",
              support::with_commas(sw.total_cycles - hw.total_cycles).c_str(),
              support::with_commas(sel.min_path_gain).c_str());
  std::printf("overlap       : %s cycles on average\n",
              support::with_commas(hw.overlap_cycles).c_str());
  std::printf("IP busy       : %s cycles on average\n",
              support::with_commas(hw.ip_active_cycles).c_str());
  return 0;
}

int cmd_pareto(const Args& args, select::Flow& flow) {
  dse::ParetoOptions opts;
  opts.select = select_options(args);
  const std::int64_t gmax = flow.max_feasible_gain(opts.select);
  // --steps N coarsens the frontier to roughly N points (default: exact).
  if (args.steps != 8) {
    opts.gain_step = std::max<std::int64_t>(1, gmax / args.steps);
  }
  const auto frontier = dse::pareto_frontier(flow.selector(), opts);
  std::printf("%zu Pareto points (max feasible gain %s)\n\n", frontier.size(),
              support::with_commas(gmax).c_str());
  std::fputs(
      dse::render_frontier(frontier, flow.imp_database(), args.workload.library).c_str(),
      stdout);
  return 0;
}

int cmd_sens(const Args& args, select::Flow& flow) {
  const select::SelectOptions opt = select_options(args);
  const std::int64_t gmax = flow.max_feasible_gain(opt);
  const std::int64_t rg = args.rg.value_or(gmax / 2);
  const dse::SensitivityReport rep = dse::analyze_sensitivity(flow.selector(), rg, opt);
  std::fputs(dse::render_sensitivity(rep, args.workload.library).c_str(), stdout);
  return rep.baseline.feasible ? 0 : 1;
}

int cmd_lint(const Args& args) {
  const auto findings = iface::lint_library(args.workload.library);
  if (findings.empty()) {
    std::printf("library is clean (%zu IPs)\n", args.workload.library.size());
    return 0;
  }
  std::fputs(iface::render_lint(findings).c_str(), stdout);
  return iface::has_lint_errors(findings) ? 1 : 0;
}

int cmd_rtl(const Args& args, select::Flow& flow) {
  const select::SelectOptions opt = select_options(args);
  const std::int64_t gmax = flow.max_feasible_gain(opt);
  const std::int64_t rg = args.rg.value_or(gmax * 3 / 5);
  const select::Selection sel = flow.select(rg, opt);
  if (!sel.feasible) {
    std::printf("INFEASIBLE at RG=%s\n", support::with_commas(rg).c_str());
    return 1;
  }
  const workloads::Workload& w = args.workload;
  const iface::KernelParams kernel;

  std::printf("// design point: RG=%s, %s\n\n", support::with_commas(rg).c_str(),
              sel.describe(flow.imp_database(), w.library).c_str());

  // One controller module per merged hardware-interfaced S-instruction.
  std::vector<std::pair<std::uint32_t, int>> emitted;
  ucode::Urom urom;
  for (isel::ImpIndex idx : sel.chosen) {
    const isel::Imp& imp = flow.imp_database().imps()[idx];
    const std::pair<std::uint32_t, int> key{imp.ip.value,
                                            static_cast<int>(imp.iface_type)};
    if (std::find(emitted.begin(), emitted.end(), key) != emitted.end()) continue;
    emitted.push_back(key);
    const iplib::IpDescriptor& ip = w.library.ip(imp.ip);
    const iface::InterfaceProgram prog =
        iface::expand_template(imp.iface_type, ip, *imp.ip_function, kernel);
    const std::string base = rtl::sanitize_identifier(
        ip.name + "_" + std::string(iface::short_name(imp.iface_type)));
    if (iface::is_software(imp.iface_type)) {
      urom.add_sequence("s_" + base, ucode::words_from_program(prog));
    } else {
      const iface::ControllerFsm fsm = iface::ControllerFsm::synthesize(prog);
      std::fputs(rtl::emit_controller(fsm, "ctrl_" + base).c_str(), stdout);
      std::fputs("\n", stdout);
    }
  }

  if (urom.sequence_count() > 0) {
    urom.optimize();
    std::fputs(rtl::emit_urom(urom, "urom_sinstr").c_str(), stdout);
    std::fputs("\n", stdout);
  }

  // Instruction decoder for the whole generated ISA.
  const report::ChipReport rep = report::generate_report(flow, sel);
  std::fputs(rtl::emit_decoder(rep.isa, "instr_decoder").c_str(), stdout);
  return 0;
}

/// Test-only hook: PARTITA_FAULT=site[:n] arms one fault-injection site
/// before the run (see support/fault_injection.hpp for the site list), so
/// ctest can drive recovery paths -- e.g. the degraded exit code 4 via
/// PARTITA_FAULT=ilp.deadline -- without real wall-clock pressure.
void arm_fault_from_env() {
  const char* env = std::getenv("PARTITA_FAULT");
  if (!env || !*env) return;
  std::string spec(env);
  std::uint64_t trip_at = 1;
  if (const std::size_t colon = spec.rfind(':'); colon != std::string::npos) {
    trip_at = std::strtoull(spec.c_str() + colon + 1, nullptr, 10);
    if (trip_at == 0) trip_at = 1;
    spec.resize(colon);
  }
  support::FaultInjector::instance().arm(spec, trip_at);
}

int run(int argc, char** argv) {
  arm_fault_from_env();
  Args args = parse_args(argc, argv);
  if (args.command == "lint") return cmd_lint(args);

  // Fallible construction: parse errors were caught above, but the module
  // may still fail semantic verification (bad entry, recursion, dangling
  // call sites) or be inconsistent with the IP library.
  auto flow_or = select::Flow::create(args.workload.module, args.workload.library);
  if (!flow_or.ok()) {
    std::fprintf(stderr, "partita: %s", flow_or.error().render().c_str());
    return kExitInput;
  }
  select::Flow& flow = *flow_or.value();

  if (args.command == "info") return cmd_info(args, flow);
  if (args.command == "imps") return cmd_imps(args, flow);
  if (args.command == "select") return cmd_select(args, flow);
  if (args.command == "sweep") return cmd_sweep(args, flow);
  if (args.command == "report") return cmd_report(args, flow);
  if (args.command == "sim") return cmd_sim(args, flow);
  if (args.command == "rtl") return cmd_rtl(args, flow);
  if (args.command == "pareto") return cmd_pareto(args, flow);
  if (args.command == "sens") return cmd_sens(args, flow);
  usage(argv[0]);
}

}  // namespace

int main(int argc, char** argv) {
  // Last-resort boundary: anything that escapes as an exception is rendered
  // as a diagnostic rather than std::terminate'ing without a message.
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "partita: fatal: %s\n", e.what());
    return 1;
  } catch (...) {
    std::fprintf(stderr, "partita: fatal: unknown exception\n");
    return 1;
  }
}

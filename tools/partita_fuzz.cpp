// partita_fuzz: differential fuzzing front-end for the selection oracle.
//
// Generates seeded random selection instances, runs each through both the
// exhaustive oracle and the production ILP selector, and fails loudly on any
// divergence. On a mismatch the offending instance is delta-debugged to a
// minimal repro and dumped as a JSON fixture that `--replay` loads back.
//
//   partita_fuzz --instances 500 --seed 1 --scalls 8        # exact mode
//   partita_fuzz --mode sandwich --instances 100 --scalls 18
//   partita_fuzz --mode cache --instances 500 --seed 1      # cache consistency
//   partita_fuzz --replay tests/fixtures/shrunk.json
//
// `--mode cache` is the cache-consistency harness (docs/caching.md): it
// streams a mix of fresh, exact-duplicate, RHS-perturbed (same structure,
// shifted required gain) and permuted-but-equivalent (IP library reordered)
// instances through a cache-enabled service::SolveService, and checks every
// answer -- hit, neighbor-seeded or miss -- bit-identically against a cold
// one-shot Flow::select of the same instance (select::solution_signature).
// Permuted duplicates additionally cross-check feasibility and optimal area
// against the original's cold answer. A divergence is ddmin-shrunk and
// dumped as a replayable fixture like exact mode.
//
// Exit codes: 0 all instances agree, 1 divergence found, 2 usage error.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "oracle/differential.hpp"
#include "oracle/fixture.hpp"
#include "oracle/shrink.hpp"
#include "select/flow.hpp"
#include "service/journal.hpp"
#include "service/solve_service.hpp"
#include "workloads/random_workload.hpp"

namespace {

using namespace partita;

struct Args {
  int instances = 100;
  std::uint64_t seed = 1;
  int scalls = 6;
  int kernels = 4;
  int ips = 5;
  int branch_groups = 1;
  int hierarchy = 0;  // max wrapper depth
  std::string mode = "exact";
  bool shrink = true;
  std::string fixture_dir = ".";
  std::string replay;
};

void usage() {
  std::fprintf(stderr,
               "usage: partita_fuzz [--instances N] [--seed S] [--scalls N]\n"
               "                    [--kernels N] [--ips N] [--branch-groups N]\n"
               "                    [--hierarchy DEPTH] [--mode exact|sandwich|cache]\n"
               "                    [--no-shrink] [--fixture-dir DIR]\n"
               "                    [--replay FIXTURE.json]\n");
}

bool parse_int(const char* s, long long* out) {
  char* end = nullptr;
  *out = std::strtoll(s, &end, 10);
  return end && *end == '\0' && end != s;
}

// Accepts both quarantine formats: a CRC-framed partita-journal-v1
// quarantine record (what the journaling service writes) and legacy bare
// fixture JSON -- read_quarantine_file dispatches on the frame magic.
int replay_fixture(const std::string& path) {
  std::string error;
  std::string doc;
  if (!service::Journal::read_quarantine_file(path, &doc, &error)) {
    std::fprintf(stderr, "partita_fuzz: cannot read fixture %s: %s\n", path.c_str(),
                 error.c_str());
    return 2;
  }
  const auto spec = oracle::parse_fixture(doc, &error);
  if (!spec) {
    std::fprintf(stderr, "partita_fuzz: cannot load fixture %s: %s\n", path.c_str(),
                 error.c_str());
    return 2;
  }
  const oracle::DiffResult r = oracle::differential_check_spec(*spec);
  std::printf("fixture %s: rg=%lld oracle=%s/%.4f ilp=%s/%.4f (%s)\n", path.c_str(),
              static_cast<long long>(r.required_gain),
              r.oracle_feasible ? "feasible" : "infeasible", r.oracle_area,
              r.ilp_feasible ? "feasible" : "infeasible", r.ilp_area,
              r.ok ? "agree" : r.detail.c_str());
  return r.ok ? 0 : 1;
}

workloads::InstanceGenParams gen_params(const Args& args) {
  workloads::InstanceGenParams p;
  p.scalls = args.scalls;
  p.kernels = args.kernels;
  p.ips = args.ips;
  p.branch_groups = args.branch_groups;
  p.max_hierarchy_depth = args.hierarchy;
  return p;
}

int run_exact(const Args& args) {
  const workloads::InstanceGenParams params = gen_params(args);
  int failures = 0, skipped = 0;
  for (int i = 0; i < args.instances; ++i) {
    const std::uint64_t seed = args.seed + static_cast<std::uint64_t>(i);
    const workloads::InstanceSpec spec = workloads::random_instance_spec(params, seed);
    const oracle::DiffResult r = oracle::differential_check_spec(spec);
    if (r.ok) continue;
    if (r.skipped) {
      ++skipped;
      continue;
    }
    ++failures;
    std::fprintf(stderr, "seed %llu DIVERGES: %s\n",
                 static_cast<unsigned long long>(seed), r.detail.c_str());
    workloads::InstanceSpec repro = spec;
    if (args.shrink) {
      oracle::ShrinkStats stats;
      repro = oracle::shrink_spec(
          spec,
          [](const workloads::InstanceSpec& s) {
            const oracle::DiffResult rr = oracle::differential_check_spec(s);
            return !rr.ok && !rr.skipped;
          },
          &stats);
      std::fprintf(stderr, "  shrunk to %zu sites / %zu ips (%d probes)\n",
                   repro.sites.size(), repro.ips.size(), stats.predicate_calls);
    }
    const std::string path =
        args.fixture_dir + "/fuzz_seed" + std::to_string(seed) + ".json";
    if (oracle::write_fixture(path, repro)) {
      std::fprintf(stderr, "  fixture written to %s\n", path.c_str());
    }
  }
  std::printf("partita_fuzz exact: %d instances, %d skipped (guard), %d divergences\n",
              args.instances, skipped, failures);
  return failures ? 1 : 0;
}

int run_sandwich(const Args& args) {
  const workloads::InstanceGenParams params = gen_params(args);
  int failures = 0;
  for (int i = 0; i < args.instances; ++i) {
    const std::uint64_t seed = args.seed + static_cast<std::uint64_t>(i);
    const workloads::InstanceSpec spec = workloads::random_instance_spec(params, seed);
    const workloads::Workload wl = workloads::spec_workload(spec);
    const oracle::SandwichResult r = oracle::sandwich_check(wl);
    if (r.ok) continue;
    ++failures;
    std::fprintf(stderr, "seed %llu BOUNDS VIOLATED: %s\n",
                 static_cast<unsigned long long>(seed), r.detail.c_str());
  }
  std::printf("partita_fuzz sandwich: %d instances, %d violations\n", args.instances,
              failures);
  return failures ? 1 : 0;
}

// --- cache consistency mode -------------------------------------------------

std::uint64_t splitmix(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Reorders the spec's IP library with a seeded Fisher-Yates shuffle: the
/// instance is mathematically equivalent, but IMP enumeration order -- and
/// therefore the ILP's column order -- changes, so its canonical optimum may
/// legitimately differ in the chosen set while agreeing on feasibility and
/// optimal area.
workloads::InstanceSpec permute_spec(const workloads::InstanceSpec& spec,
                                     std::uint64_t seed) {
  workloads::InstanceSpec p = spec;
  for (std::size_t i = p.ips.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(splitmix(&seed) % i);
    std::swap(p.ips[i - 1], p.ips[j]);
  }
  return p;
}

/// Cold one-shot reference for a spec at a literal gain, under the service's
/// default options. Returns false when the spec does not pass Flow
/// verification (then it cannot be submitted either).
bool cold_reference(const workloads::InstanceSpec& spec, std::int64_t gain,
                    select::Selection* out) {
  const workloads::Workload wl = workloads::spec_workload(spec);
  const auto flow = select::Flow::create(wl.module, wl.library);
  if (!flow.ok()) return false;
  *out = flow.value()->select(gain);
  return true;
}

/// The shrink predicate: does a cache-enabled service diverge from a cold
/// solve on this spec (using spec.required_gain as the literal gain)? Runs
/// the smallest stream that exercises every cache path: miss (insert), exact
/// hit, and a neighbor-seeded near-miss at gain-1.
bool cache_inconsistent(const workloads::InstanceSpec& spec) {
  if (!workloads::spec_valid(spec)) return false;
  const std::int64_t gain = spec.required_gain;
  select::Selection cold;
  if (!cold_reference(spec, gain, &cold)) return false;

  service::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.cache_enabled = true;
  service::SolveService svc(cfg);
  for (int round = 0; round < 2; ++round) {
    service::SolveRequest req;
    req.workload = workloads::spec_workload(spec);
    req.required_gain = gain;
    const service::SolveResponse r = svc.wait(svc.submit(std::move(req)));
    if (r.state != service::RequestState::kCompleted) return true;
    if (select::solution_signature(r.selection) != select::solution_signature(cold)) {
      return true;
    }
  }
  if (gain > 1) {
    select::Selection near_cold;
    if (!cold_reference(spec, gain - 1, &near_cold)) return false;
    service::SolveRequest req;
    req.workload = workloads::spec_workload(spec);
    req.required_gain = gain - 1;
    const service::SolveResponse r = svc.wait(svc.submit(std::move(req)));
    if (r.state != service::RequestState::kCompleted) return true;
    if (select::solution_signature(r.selection) !=
        select::solution_signature(near_cold)) {
      return true;
    }
  }
  return false;
}

int run_cache(const Args& args) {
  const workloads::InstanceGenParams params = gen_params(args);
  std::uint64_t rng = args.seed * 0x9e3779b97f4a7c15ULL + 1;

  service::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.cache_enabled = true;
  // Small enough that long streams also exercise eviction + re-insert.
  cfg.cache_capacity = 64;
  service::SolveService svc(cfg);

  /// One issued instance the stream can replay against later.
  struct Issued {
    workloads::InstanceSpec spec;
    std::int64_t gain = 0;
    bool cold_feasible = false;
    double cold_area = 0.0;
  };
  std::vector<Issued> history;

  int failures = 0, skipped = 0;
  int fresh = 0, duplicates = 0, perturbed = 0, permuted = 0;
  int hits = 0, neighbors = 0, misses = 0;

  for (int i = 0; i < args.instances; ++i) {
    workloads::InstanceSpec spec;
    std::int64_t gain = 0;
    const Issued* base = nullptr;
    bool is_permuted = false;

    const std::uint64_t roll = history.empty() ? 0 : splitmix(&rng) % 100;
    if (history.empty() || roll < 35) {
      // Fresh instance: resolve a mid-range gain from a cold max-gain probe
      // so duplicates and perturbations can reference a literal number.
      spec = workloads::random_instance_spec(
          params, args.seed + static_cast<std::uint64_t>(i));
      const workloads::Workload wl = workloads::spec_workload(spec);
      const auto flow = select::Flow::create(wl.module, wl.library);
      if (!flow.ok()) {
        ++skipped;
        continue;
      }
      const std::int64_t gmax = flow.value()->max_feasible_gain();
      gain = gmax > 1 ? gmax / 2 : 1;
      ++fresh;
    } else {
      base = &history[splitmix(&rng) % history.size()];
      spec = base->spec;
      gain = base->gain;
      if (roll < 65) {
        ++duplicates;  // exact repeat: must be a cache hit
      } else if (roll < 85) {
        // RHS perturbation: same structure, shifted required gain -- a
        // near-miss that exercises neighbor seeding.
        const std::int64_t delta =
            1 + static_cast<std::int64_t>(splitmix(&rng) % 5);
        gain = (splitmix(&rng) & 1) != 0 ? gain + delta
                                         : (gain > delta ? gain - delta : 1);
        ++perturbed;
        base = nullptr;  // different gain: no equivalence cross-check
      } else {
        spec = permute_spec(spec, splitmix(&rng));
        is_permuted = true;
        ++permuted;
      }
    }
    spec.required_gain = gain;

    select::Selection cold;
    if (!cold_reference(spec, gain, &cold)) {
      ++skipped;
      continue;
    }
    service::SolveRequest req;
    req.workload = workloads::spec_workload(spec);
    req.required_gain = gain;
    const service::SolveResponse r = svc.wait(svc.submit(std::move(req)));

    std::string detail;
    if (r.state != service::RequestState::kCompleted) {
      detail = "service did not complete: " + r.error.render();
    } else if (select::solution_signature(r.selection) !=
               select::solution_signature(cold)) {
      detail = "cache=" + r.cache + " answer differs from cold solve:\n  service " +
               select::solution_signature(r.selection) + "\n  cold    " +
               select::solution_signature(cold);
    } else if (is_permuted && base != nullptr &&
               (cold.feasible != base->cold_feasible ||
                (cold.feasible &&
                 std::fabs(cold.total_area() - base->cold_area) >
                     1e-6 * (1.0 + std::fabs(base->cold_area))))) {
      detail = "permuted-equivalent instance changed the optimum: area " +
               std::to_string(cold.total_area()) + " vs " +
               std::to_string(base->cold_area);
    }

    if (r.state == service::RequestState::kCompleted) {
      if (r.cache == "hit") ++hits;
      else if (r.cache == "neighbor") ++neighbors;
      else ++misses;
    }

    if (detail.empty()) {
      if (history.size() < 512) {
        history.push_back({spec, gain, cold.feasible,
                           cold.feasible ? cold.total_area() : 0.0});
      }
      continue;
    }

    ++failures;
    std::fprintf(stderr, "instance %d (gain %lld) DIVERGES: %s\n", i,
                 static_cast<long long>(gain), detail.c_str());
    workloads::InstanceSpec repro = spec;
    if (args.shrink && cache_inconsistent(spec)) {
      oracle::ShrinkStats stats;
      repro = oracle::shrink_spec(spec, cache_inconsistent, &stats);
      std::fprintf(stderr, "  shrunk to %zu sites / %zu ips (%d probes)\n",
                   repro.sites.size(), repro.ips.size(), stats.predicate_calls);
    }
    const std::string path =
        args.fixture_dir + "/fuzz_cache_" + std::to_string(i) + ".json";
    if (oracle::write_fixture(path, repro)) {
      std::fprintf(stderr, "  fixture written to %s\n", path.c_str());
    }
  }

  const service::ServiceStats st = svc.stats();
  if (st.cache_hits + st.cache_misses != st.cache_lookups) {
    ++failures;
    std::fprintf(stderr, "counter invariant broken: hits %llu + misses %llu != "
                 "lookups %llu\n",
                 static_cast<unsigned long long>(st.cache_hits),
                 static_cast<unsigned long long>(st.cache_misses),
                 static_cast<unsigned long long>(st.cache_lookups));
  }
  std::printf(
      "partita_fuzz cache: %d instances (%d fresh, %d dup, %d perturbed, "
      "%d permuted), %d skipped, served %d hit / %d neighbor / %d miss "
      "(%llu seed fallbacks), %d divergences\n",
      args.instances, fresh, duplicates, perturbed, permuted, skipped, hits,
      neighbors, misses, static_cast<unsigned long long>(st.cache_seed_fallbacks),
      failures);
  return failures ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next_int = [&](long long* out) {
      return i + 1 < argc && parse_int(argv[++i], out);
    };
    long long v = 0;
    if (a == "--instances" && next_int(&v)) {
      args.instances = static_cast<int>(v);
    } else if (a == "--seed" && next_int(&v)) {
      args.seed = static_cast<std::uint64_t>(v);
    } else if (a == "--scalls" && next_int(&v)) {
      args.scalls = static_cast<int>(v);
    } else if (a == "--kernels" && next_int(&v)) {
      args.kernels = static_cast<int>(v);
    } else if (a == "--ips" && next_int(&v)) {
      args.ips = static_cast<int>(v);
    } else if (a == "--branch-groups" && next_int(&v)) {
      args.branch_groups = static_cast<int>(v);
    } else if (a == "--hierarchy" && next_int(&v)) {
      args.hierarchy = static_cast<int>(v);
    } else if (a == "--mode" && i + 1 < argc) {
      args.mode = argv[++i];
    } else if (a == "--no-shrink") {
      args.shrink = false;
    } else if (a == "--fixture-dir" && i + 1 < argc) {
      args.fixture_dir = argv[++i];
    } else if (a == "--replay" && i + 1 < argc) {
      args.replay = argv[++i];
    } else if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "partita_fuzz: bad argument '%s'\n", a.c_str());
      usage();
      return 2;
    }
  }
  if (args.instances < 1 || args.scalls < 1 || args.kernels < 1 || args.ips < 1 ||
      args.branch_groups < 0 || args.hierarchy < 0 ||
      2 * args.branch_groups > args.scalls) {
    std::fprintf(stderr, "partita_fuzz: invalid parameter combination\n");
    return 2;
  }
  if (!args.replay.empty()) return replay_fixture(args.replay);
  if (args.mode == "exact") return run_exact(args);
  if (args.mode == "sandwich") return run_sandwich(args);
  if (args.mode == "cache") return run_cache(args);
  std::fprintf(stderr, "partita_fuzz: unknown mode '%s'\n", args.mode.c_str());
  usage();
  return 2;
}

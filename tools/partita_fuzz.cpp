// partita_fuzz: differential fuzzing front-end for the selection oracle.
//
// Generates seeded random selection instances, runs each through both the
// exhaustive oracle and the production ILP selector, and fails loudly on any
// divergence. On a mismatch the offending instance is delta-debugged to a
// minimal repro and dumped as a JSON fixture that `--replay` loads back.
//
//   partita_fuzz --instances 500 --seed 1 --scalls 8        # exact mode
//   partita_fuzz --mode sandwich --instances 100 --scalls 18
//   partita_fuzz --replay tests/fixtures/shrunk.json
//
// Exit codes: 0 all instances agree, 1 divergence found, 2 usage error.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "oracle/differential.hpp"
#include "oracle/fixture.hpp"
#include "oracle/shrink.hpp"
#include "workloads/random_workload.hpp"

namespace {

using namespace partita;

struct Args {
  int instances = 100;
  std::uint64_t seed = 1;
  int scalls = 6;
  int kernels = 4;
  int ips = 5;
  int branch_groups = 1;
  int hierarchy = 0;  // max wrapper depth
  std::string mode = "exact";
  bool shrink = true;
  std::string fixture_dir = ".";
  std::string replay;
};

void usage() {
  std::fprintf(stderr,
               "usage: partita_fuzz [--instances N] [--seed S] [--scalls N]\n"
               "                    [--kernels N] [--ips N] [--branch-groups N]\n"
               "                    [--hierarchy DEPTH] [--mode exact|sandwich]\n"
               "                    [--no-shrink] [--fixture-dir DIR]\n"
               "                    [--replay FIXTURE.json]\n");
}

bool parse_int(const char* s, long long* out) {
  char* end = nullptr;
  *out = std::strtoll(s, &end, 10);
  return end && *end == '\0' && end != s;
}

int replay_fixture(const std::string& path) {
  std::string error;
  const auto spec = oracle::load_fixture(path, &error);
  if (!spec) {
    std::fprintf(stderr, "partita_fuzz: cannot load fixture %s: %s\n", path.c_str(),
                 error.c_str());
    return 2;
  }
  const oracle::DiffResult r = oracle::differential_check_spec(*spec);
  std::printf("fixture %s: rg=%lld oracle=%s/%.4f ilp=%s/%.4f (%s)\n", path.c_str(),
              static_cast<long long>(r.required_gain),
              r.oracle_feasible ? "feasible" : "infeasible", r.oracle_area,
              r.ilp_feasible ? "feasible" : "infeasible", r.ilp_area,
              r.ok ? "agree" : r.detail.c_str());
  return r.ok ? 0 : 1;
}

workloads::InstanceGenParams gen_params(const Args& args) {
  workloads::InstanceGenParams p;
  p.scalls = args.scalls;
  p.kernels = args.kernels;
  p.ips = args.ips;
  p.branch_groups = args.branch_groups;
  p.max_hierarchy_depth = args.hierarchy;
  return p;
}

int run_exact(const Args& args) {
  const workloads::InstanceGenParams params = gen_params(args);
  int failures = 0, skipped = 0;
  for (int i = 0; i < args.instances; ++i) {
    const std::uint64_t seed = args.seed + static_cast<std::uint64_t>(i);
    const workloads::InstanceSpec spec = workloads::random_instance_spec(params, seed);
    const oracle::DiffResult r = oracle::differential_check_spec(spec);
    if (r.ok) continue;
    if (r.skipped) {
      ++skipped;
      continue;
    }
    ++failures;
    std::fprintf(stderr, "seed %llu DIVERGES: %s\n",
                 static_cast<unsigned long long>(seed), r.detail.c_str());
    workloads::InstanceSpec repro = spec;
    if (args.shrink) {
      oracle::ShrinkStats stats;
      repro = oracle::shrink_spec(
          spec,
          [](const workloads::InstanceSpec& s) {
            const oracle::DiffResult rr = oracle::differential_check_spec(s);
            return !rr.ok && !rr.skipped;
          },
          &stats);
      std::fprintf(stderr, "  shrunk to %zu sites / %zu ips (%d probes)\n",
                   repro.sites.size(), repro.ips.size(), stats.predicate_calls);
    }
    const std::string path =
        args.fixture_dir + "/fuzz_seed" + std::to_string(seed) + ".json";
    if (oracle::write_fixture(path, repro)) {
      std::fprintf(stderr, "  fixture written to %s\n", path.c_str());
    }
  }
  std::printf("partita_fuzz exact: %d instances, %d skipped (guard), %d divergences\n",
              args.instances, skipped, failures);
  return failures ? 1 : 0;
}

int run_sandwich(const Args& args) {
  const workloads::InstanceGenParams params = gen_params(args);
  int failures = 0;
  for (int i = 0; i < args.instances; ++i) {
    const std::uint64_t seed = args.seed + static_cast<std::uint64_t>(i);
    const workloads::InstanceSpec spec = workloads::random_instance_spec(params, seed);
    const workloads::Workload wl = workloads::spec_workload(spec);
    const oracle::SandwichResult r = oracle::sandwich_check(wl);
    if (r.ok) continue;
    ++failures;
    std::fprintf(stderr, "seed %llu BOUNDS VIOLATED: %s\n",
                 static_cast<unsigned long long>(seed), r.detail.c_str());
  }
  std::printf("partita_fuzz sandwich: %d instances, %d violations\n", args.instances,
              failures);
  return failures ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next_int = [&](long long* out) {
      return i + 1 < argc && parse_int(argv[++i], out);
    };
    long long v = 0;
    if (a == "--instances" && next_int(&v)) {
      args.instances = static_cast<int>(v);
    } else if (a == "--seed" && next_int(&v)) {
      args.seed = static_cast<std::uint64_t>(v);
    } else if (a == "--scalls" && next_int(&v)) {
      args.scalls = static_cast<int>(v);
    } else if (a == "--kernels" && next_int(&v)) {
      args.kernels = static_cast<int>(v);
    } else if (a == "--ips" && next_int(&v)) {
      args.ips = static_cast<int>(v);
    } else if (a == "--branch-groups" && next_int(&v)) {
      args.branch_groups = static_cast<int>(v);
    } else if (a == "--hierarchy" && next_int(&v)) {
      args.hierarchy = static_cast<int>(v);
    } else if (a == "--mode" && i + 1 < argc) {
      args.mode = argv[++i];
    } else if (a == "--no-shrink") {
      args.shrink = false;
    } else if (a == "--fixture-dir" && i + 1 < argc) {
      args.fixture_dir = argv[++i];
    } else if (a == "--replay" && i + 1 < argc) {
      args.replay = argv[++i];
    } else if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "partita_fuzz: bad argument '%s'\n", a.c_str());
      usage();
      return 2;
    }
  }
  if (args.instances < 1 || args.scalls < 1 || args.kernels < 1 || args.ips < 1 ||
      args.branch_groups < 0 || args.hierarchy < 0 ||
      2 * args.branch_groups > args.scalls) {
    std::fprintf(stderr, "partita_fuzz: invalid parameter combination\n");
    return 2;
  }
  if (!args.replay.empty()) return replay_fixture(args.replay);
  if (args.mode == "exact") return run_exact(args);
  if (args.mode == "sandwich") return run_sandwich(args);
  std::fprintf(stderr, "partita_fuzz: unknown mode '%s'\n", args.mode.c_str());
  usage();
  return 2;
}

// partita_served — script-driven front end for the concurrent solve service.
//
//   partita_served [options] <script>      run the command script
//   partita_served [options] -             read commands from stdin
//
// options:
//   --workers N         worker-pool size (default 2; must be >= 1)
//   --policy NAME       scheduling policy: fifo | priority | edf | rejecter
//   --queue-depth N     admission-queue depth (default 16; must be >= 1)
//   --max-memory-mb N   aggregate admitted solver-memory budget (0 = off)
//   --quarantine-dir D  directory for replayable quarantine fixtures
//   --paused            start with the workers parked (resume via `resume`)
//
// script commands (one per line; '#' starts a comment):
//   submit <builtin> [rg] [k=v ...]     submit a built-in workload
//   spec <seed> [scalls] [kernels] [ips] [k=v ...]
//                                       submit a random generated instance
//                                       (carries its InstanceSpec, so a
//                                       failure leaves a replayable fixture)
//
//   Trailing k=v tokens set scheduling metadata on either submit form:
//   tenant=ID prio=interactive|standard|batch deadline=SECONDS
//   budget=SECONDS (declared solver time limit; what priority backfill
//   orders by).
//   cancel <k>                          cancel the k-th submission (1-based)
//   fault <site>[:n]                    arm a fault-injection site
//   resume                              unpark a --paused service
//   drain                               drain now (later submits are rejected)
//   selfterm                            raise SIGTERM against this process
//
// Lifecycle: after the script (or on SIGTERM, which may arrive at any point)
// the service drains gracefully -- every submitted request reaches a terminal
// state and is reported -- and the process exits 0. PARTITA_FAULT=site[:n] in
// the environment arms one extra site before the service starts.
//
// exit codes: 0 clean drain (including SIGTERM-triggered), 2 usage/bad
// config, 3 unreadable script.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "service/solve_service.hpp"
#include "support/fault_injection.hpp"
#include "workloads/random_workload.hpp"
#include "workloads/workloads.hpp"

using namespace partita;

namespace {

constexpr int kExitUsage = 2;
constexpr int kExitInput = 3;

volatile std::sig_atomic_t g_sigterm = 0;

void on_sigterm(int) { g_sigterm = 1; }

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workers N] [--policy P] [--queue-depth N]\n"
               "       %*s [--max-memory-mb N] [--quarantine-dir D] [--paused]\n"
               "       %*s <script | ->\n"
               "\n"
               "script commands: submit <builtin> [rg] [k=v...] | spec <seed>\n"
               "[scalls kernels ips] [k=v...] | cancel <k> | fault <site>[:n] |\n"
               "resume | drain | selfterm\n"
               "k=v: tenant= prio= deadline= budget=\n"
               "\n"
               "exit codes: 0 clean drain (SIGTERM included), 2 usage, 3 bad script\n",
               argv0, static_cast<int>(std::strlen(argv0)), "",
               static_cast<int>(std::strlen(argv0)), "");
  std::exit(kExitUsage);
}

/// Applies one `key=value` scheduling-metadata token; false on unknown key
/// or bad value.
bool apply_sched_token(const std::string& token, service::SolveRequest& req) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos) return false;
  const std::string key = token.substr(0, eq);
  const std::string value = token.substr(eq + 1);
  if (key == "tenant") {
    req.tenant = value;
  } else if (key == "prio") {
    const int p = service::parse_priority(value);
    if (p < 0) return false;
    req.priority = p;
  } else if (key == "deadline") {
    req.deadline_seconds = std::atof(value.c_str());
  } else if (key == "budget") {
    req.options.ilp.budget.time_limit_seconds = std::atof(value.c_str());
  } else {
    return false;
  }
  return true;
}

/// Consumes every remaining token of the line as k=v metadata.
bool apply_sched_tokens(std::istringstream& ls, service::SolveRequest& req,
                        const char* argv0) {
  std::string token;
  while (ls >> token) {
    if (!apply_sched_token(token, req)) {
      std::fprintf(stderr, "%s: bad metadata token '%s'\n", argv0, token.c_str());
      return false;
    }
  }
  return true;
}

std::optional<workloads::Workload> builtin(const std::string& name) {
  if (name == "gsm_encoder") return workloads::gsm_encoder();
  if (name == "gsm_decoder") return workloads::gsm_decoder();
  if (name == "jpeg_encoder") return workloads::jpeg_encoder();
  if (name == "fig9") return workloads::fig9_case();
  if (name == "fig10") return workloads::fig10_case();
  if (name == "adpcm_codec") return workloads::adpcm_codec();
  return std::nullopt;
}

void arm_fault(const std::string& spec_in) {
  std::string spec = spec_in;
  std::uint64_t trip_at = 1;
  if (const std::size_t colon = spec.rfind(':'); colon != std::string::npos) {
    trip_at = std::strtoull(spec.c_str() + colon + 1, nullptr, 10);
    if (trip_at == 0) trip_at = 1;
    spec.resize(colon);
  }
  support::FaultInjector::instance().arm(spec, trip_at);
}

void arm_fault_from_env() {
  const char* env = std::getenv("PARTITA_FAULT");
  if (env && *env) arm_fault(env);
}

/// One terminal-report line per request, in submission order.
void report(const service::SolveResponse& r) {
  std::printf("#%llu %-16s %s", static_cast<unsigned long long>(r.ticket),
              r.label.c_str(), service::to_string(r.state));
  switch (r.state) {
    case service::RequestState::kCompleted:
      std::printf(" area=%.3f gain=%lld rung=%s attempts=%d", r.selection.total_area(),
                  static_cast<long long>(r.selection.min_path_gain),
                  select::to_string(r.selection.rung), r.attempts);
      break;
    case service::RequestState::kRejected:
      std::printf(" retry-after=%.3fs (%s)", r.retry_after_seconds,
                  r.error.message.c_str());
      break;
    case service::RequestState::kFailed:
      std::printf(" attempts=%d (%s)%s%s", r.attempts, r.error.message.c_str(),
                  r.quarantine_fixture.empty() ? "" : " fixture=",
                  r.quarantine_fixture.c_str());
      break;
    default: break;
  }
  std::printf("\n");
}

int run(int argc, char** argv) {
  service::ServiceConfig cfg;
  std::string script_path;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "partita_served: %s needs a value\n", flag.c_str());
        std::exit(kExitUsage);
      }
      return argv[++i];
    };
    if (flag == "--workers") cfg.workers = std::atoi(need_value());
    else if (flag == "--policy") cfg.policy = need_value();
    else if (flag == "--queue-depth")
      cfg.max_queue_depth = static_cast<std::size_t>(std::atoll(need_value()));
    else if (flag == "--max-memory-mb")
      cfg.max_admitted_memory_bytes =
          static_cast<std::size_t>(std::atof(need_value()) * 1024.0 * 1024.0);
    else if (flag == "--quarantine-dir") cfg.quarantine_dir = need_value();
    else if (flag == "--paused") cfg.start_paused = true;
    else if (!flag.empty() && flag[0] == '-' && flag != "-") {
      std::fprintf(stderr, "partita_served: unknown option '%s'\n", flag.c_str());
      return kExitUsage;
    } else if (script_path.empty()) {
      script_path = flag;
    } else {
      usage(argv[0]);
    }
  }
  if (script_path.empty()) usage(argv[0]);
  if (cfg.workers < 1) {
    std::fprintf(stderr, "partita_served: --workers must be >= 1\n");
    return kExitUsage;
  }
  if (cfg.max_queue_depth < 1) {
    std::fprintf(stderr, "partita_served: --queue-depth must be >= 1\n");
    return kExitUsage;
  }
  if (!service::SchedulerPolicy::create(cfg.policy, {})) {
    std::fprintf(stderr, "partita_served: unknown policy '%s'\n", cfg.policy.c_str());
    return kExitUsage;
  }

  std::ifstream file;
  std::istream* in = &std::cin;
  if (script_path != "-") {
    file.open(script_path);
    if (!file) {
      std::fprintf(stderr, "partita_served: cannot open '%s'\n", script_path.c_str());
      return kExitInput;
    }
    in = &file;
  }

  arm_fault_from_env();
  std::signal(SIGTERM, on_sigterm);

  service::SolveService svc(cfg);
  std::vector<std::uint64_t> tickets;

  std::string line;
  while (!g_sigterm && std::getline(*in, line)) {
    if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    std::string cmd;
    if (!(ls >> cmd)) continue;

    if (cmd == "submit") {
      std::string name;
      ls >> name;
      auto wl = builtin(name);
      if (!wl) {
        std::fprintf(stderr, "partita_served: unknown workload '%s'\n", name.c_str());
        return kExitInput;
      }
      service::SolveRequest req;
      req.label = name;
      req.workload = std::move(*wl);
      // Optional positional rg, then k=v metadata tokens.
      std::string tok;
      if (ls >> tok) {
        if (tok.find('=') == std::string::npos) {
          req.required_gain = std::atoll(tok.c_str());
        } else if (!apply_sched_token(tok, req)) {
          std::fprintf(stderr, "partita_served: bad metadata token '%s'\n", tok.c_str());
          return kExitInput;
        }
      }
      if (!apply_sched_tokens(ls, req, "partita_served")) return kExitInput;
      tickets.push_back(svc.submit(std::move(req)));
    } else if (cmd == "spec") {
      unsigned long long seed = 1;
      workloads::InstanceGenParams p;
      ls >> seed;
      service::SolveRequest req;
      // Optional positional scalls/kernels/ips, then k=v metadata tokens.
      int* dims[] = {&p.scalls, &p.kernels, &p.ips};
      std::string tok;
      std::size_t dim = 0;
      while (ls >> tok) {
        if (tok.find('=') == std::string::npos && dim < 3) {
          *dims[dim++] = std::atoi(tok.c_str());
        } else if (!apply_sched_token(tok, req)) {
          std::fprintf(stderr, "partita_served: bad metadata token '%s'\n", tok.c_str());
          return kExitInput;
        }
      }
      workloads::InstanceSpec spec = workloads::random_instance_spec(p, seed);
      req.label = "spec_" + std::to_string(seed);
      req.workload = workloads::spec_workload(spec);
      req.spec = std::move(spec);
      tickets.push_back(svc.submit(std::move(req)));
    } else if (cmd == "cancel") {
      std::size_t k = 0;
      ls >> k;
      if (k < 1 || k > tickets.size()) {
        std::fprintf(stderr, "partita_served: cancel index %zu out of range\n", k);
        return kExitInput;
      }
      svc.cancel(tickets[k - 1]);
    } else if (cmd == "fault") {
      std::string site;
      ls >> site;
      arm_fault(site);
    } else if (cmd == "resume") {
      svc.resume();
    } else if (cmd == "drain") {
      svc.drain();
    } else if (cmd == "selfterm") {
      std::raise(SIGTERM);
    } else {
      std::fprintf(stderr, "partita_served: unknown command '%s'\n", cmd.c_str());
      return kExitInput;
    }
  }

  // Graceful shutdown -- also the SIGTERM path: stop admission, flush every
  // request to a terminal state, report, exit 0.
  if (g_sigterm) std::printf("sigterm: draining\n");
  svc.drain();
  for (std::uint64_t t : tickets) report(svc.wait(t));
  const service::ServiceStats st = svc.stats();
  std::printf(
      "stats: submitted=%llu completed=%llu cancelled=%llu rejected=%llu "
      "failed=%llu retries=%llu peak-queue=%zu\n",
      static_cast<unsigned long long>(st.submitted),
      static_cast<unsigned long long>(st.completed),
      static_cast<unsigned long long>(st.cancelled),
      static_cast<unsigned long long>(st.rejected),
      static_cast<unsigned long long>(st.failed),
      static_cast<unsigned long long>(st.retries), st.peak_queue_depth);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "partita_served: fatal: %s\n", e.what());
    return 1;
  } catch (...) {
    std::fprintf(stderr, "partita_served: fatal: unknown exception\n");
    return 1;
  }
}
